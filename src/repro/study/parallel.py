"""Parallel study execution with durable checkpoint/resume and fault
tolerance.

The study is a grid of independent (benchmark, technique) *cells* (see
:func:`repro.study.runner.run_cell`).  :class:`ParallelStudyRunner` fans
the grid out over a ``ProcessPoolExecutor`` and commits every completed
cell to a checkpoint backend (:mod:`repro.study.store`):

* the default backend is the crash-consistent SQLite store
  (``results/checkpoints/study.sqlite``, WAL mode, one durable commit
  per cell, single-writer lease with heartbeat);
* ``config.store = False`` (CLI ``--no-store``) selects the v2 JSONL
  journal (``<run-id>.jsonl``): a fingerprint-bound header line plus one
  fsynced CRC-tagged JSON line per cell.  A journal-only run is migrated
  into the store transparently on its next store-backed resume.

Either way a resume under a different configuration fingerprint is
rejected instead of silently mixing results, and any corrupted record —
torn tail, bit rot, injected garbage — is detected by its digest and
skipped on read (that cell simply re-runs).

Failure taxonomy (:mod:`repro.study.taxonomy`): a cell ends ``ok``,
``bug``, ``timeout`` (cooperative :class:`repro.core.budget.Budget`
deadline, partial stats kept — or a watchdog hard-kill of a stuck
worker), ``diverged`` (:class:`repro.engine.strategies.ReplayDivergence`
classified, not crashed), ``error`` (exception; retried with exponential
backoff and a deterministic seed bump first), or ``quarantined`` (the
cell crashed its worker process twice — the study completes without it).
Resuming with ``retry_errors=True`` (CLI ``--retry-errors``) re-runs
every non-success cell instead of requiring manual journal surgery.

SIGINT/SIGTERM trigger a graceful drain: stop submitting, give in-flight
cells a short grace window, flush their records, and raise
:class:`StudyInterrupted` (the CLI prints the resume command and exits
0).  A second signal hard-exits.

Deterministic fault injection (:mod:`repro.study.faults`) can crash a
worker, hang a cell, force a divergence, or corrupt a journal line on an
exact (cell, attempt) — the tests use it to prove every degradation path
above end to end.

With ``jobs=1`` the cells run serially in-process — same code path, no
pool — and produce results identical to :func:`repro.study.run_study`
(cell order cannot matter: every cell is seeded independently).
"""

from __future__ import annotations

import copy
import os
import signal
import sys
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Set, Tuple

from ..engine.strategies import ReplayDivergence
from ..sctbench import get as get_benchmark
from . import faults as faults_mod
from . import supervisor as supervisor_mod
from . import taxonomy
from .config import StudyConfig
from .faults import FaultPlan
from .supervisor import DegradationController, StudySupervisor
from .runner import (
    BenchmarkResult,
    ProgressFn,
    StudyResult,
    assemble_study,
    run_cell,
    study_benchmarks,
)
# The journal codec and both checkpoint backends live in the store
# module; the names below are re-exported here for compatibility (tests
# and scripts historically import them from ``repro.study.parallel``).
from .store import (  # noqa: F401  (re-exports)
    CHECKPOINT_VERSION,
    JournalInfo,
    StoreLockedError,
    decode_journal_line,
    encode_journal_line,
    open_backend,
    read_journal,
)

#: Default journal location, relative to the working directory.
DEFAULT_CHECKPOINT_DIR = os.path.join("results", "checkpoints")

#: Total tries per cell for soft failures (``error``/``diverged``): one
#: run plus one retry, then the failure is recorded.
MAX_ATTEMPTS = 2

#: Pool breaks a cell may be in flight for before it is ``quarantined``.
QUARANTINE_CRASHES = 2

#: Main-loop poll interval: how often the pool loop checks signals,
#: watchdog deadlines, and due retries (seconds).
POLL_SECONDS = 0.25

#: Grace given to in-flight cells when draining after SIGINT/SIGTERM.
DRAIN_GRACE_SECONDS = 5.0

CellKey = Tuple[str, str]  # (benchmark name, technique)


class StudyInterrupted(RuntimeError):
    """Raised after a graceful SIGINT/SIGTERM drain.

    The journal has been flushed; ``resume_command`` (when checkpointing
    was on) re-runs the study and recovers every completed cell.
    """

    def __init__(
        self,
        message: str,
        run_id: Optional[str] = None,
        resume_command: Optional[str] = None,
        completed_cells: int = 0,
    ) -> None:
        super().__init__(message)
        self.run_id = run_id
        self.resume_command = resume_command
        self.completed_cells = completed_cells


def _worker_init() -> None:
    """Pool-worker initializer: reset signals, enroll the process tree.

    Workers are forked after the parent installs its graceful-drain
    handlers, and would otherwise inherit them — a worker that *ignores*
    SIGTERM is unkillable by the watchdog and un-drainable on exit.
    SIGTERM goes back to the default (die, so ``terminate()`` works);
    SIGINT is ignored (the parent alone runs the drain and then
    terminates the workers).

    Enrollment (:func:`repro.study.supervisor.enroll_cell_worker`) puts
    the worker in its own process group.  Everything the worker's cells
    fork — shard workers, parked snapshot holders, chain-forked holders
    — inherits the group, so the watchdog and the drain can kill the
    *whole tree* with one ``killpg`` instead of orphaning COW children.
    (It also means a terminal ^C no longer reaches the workers at all,
    which is exactly the drain contract above.)
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    supervisor_mod.enroll_cell_worker()


def _cell_worker(
    bench_name: str, technique: str, config: StudyConfig, attempt: int = 0
) -> dict:
    """Pool entry point (module-level, hence picklable).

    ``attempt`` is the 0-based submission ordinal of this cell: retries
    and crash re-queues run under :meth:`StudyConfig.for_attempt`'s
    deterministic seed bump, and fault-injection specs are matched
    against it.  Never raises: a failing cell becomes a classified record
    (``diverged`` for replay divergence, ``error`` otherwise), so one bad
    cell cannot poison the executor or lose the traceback.
    """
    try:
        plan = FaultPlan.from_config(config)
        if plan:
            spec = plan.match(bench_name, technique, attempt)
            if spec is not None:
                faults_mod.fire(spec)
        return run_cell(bench_name, technique, config.for_attempt(attempt))
    except ReplayDivergence:
        return error_record(
            bench_name,
            technique,
            traceback.format_exc(),
            status=taxonomy.DIVERGED,
        )
    except BaseException:
        return error_record(bench_name, technique, traceback.format_exc())
    finally:
        # Injected resource faults (oom ballast, forced disk readings)
        # must not outlive their cell: the pool reuses workers.
        faults_mod.clear_injected_state()


def error_record(
    bench_name: str,
    technique: str,
    error: str,
    status: str = taxonomy.ERROR,
) -> dict:
    """A cell record for a failed (benchmark, technique) execution."""
    try:
        info = get_benchmark(bench_name)
        bench_id, suite = info.bench_id, info.suite
    except KeyError:
        bench_id, suite = -1, "?"
    return {
        "kind": "cell",
        "bench": bench_name,
        "bench_id": bench_id,
        "suite": suite,
        "technique": technique,
        "status": status,
        "races": 0,
        "racy_sites": 0,
        "seconds": 0.0,
        "ts": round(time.time(), 3),
        "stats": None,
        "error": error,
    }


def load_checkpoint(path: str, config: StudyConfig) -> Dict[CellKey, dict]:
    """Completed cells recorded in journal ``path`` (empty if absent).

    Compatibility shim over :func:`repro.study.store.read_journal` —
    raises ``ValueError`` on a fingerprint mismatch; corrupted lines
    *anywhere* in the file are skipped (those cells re-run).
    """
    return read_journal(path, config).completed


class ParallelStudyRunner:
    """Fan the study's (benchmark, technique) cells over worker processes.

    Parameters
    ----------
    config:
        Study parameters; ``config.jobs`` is the default worker count,
        ``config.cell_deadline``/``cell_hard_timeout`` arm the
        cooperative deadline and the watchdog, ``config.retry_backoff``
        paces retries.
    jobs:
        Worker processes (overrides ``config.jobs``).  ``1`` runs cells
        serially in-process.
    run_id:
        Names the checkpoint journal; re-use an id to resume.  Defaults
        to a timestamped id (fresh run, no resume).
    checkpoint_dir:
        Journal directory; ``None`` disables checkpointing entirely.
    retry_errors:
        On resume, re-run journaled cells whose status is retryable
        (``timeout``/``diverged``/``error``/``quarantined``) instead of
        skipping them.  The journal is append-only: the re-run's record
        supersedes the old line (last record per cell wins on read).
    """

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        jobs: Optional[int] = None,
        run_id: Optional[str] = None,
        checkpoint_dir: Optional[str] = DEFAULT_CHECKPOINT_DIR,
        progress: Optional[ProgressFn] = None,
        retry_errors: bool = False,
    ) -> None:
        self.config = config or StudyConfig()
        self.jobs = max(1, jobs if jobs is not None else self.config.jobs)
        self.run_id = run_id or time.strftime("study-%Y%m%d-%H%M%S")
        self.checkpoint_dir = checkpoint_dir
        self.progress = progress
        self.retry_errors = retry_errors
        #: Cells executed (not resumed) by the last :meth:`run` call.
        self.executed_cells: List[CellKey] = []
        self._fault_plan = FaultPlan.from_config(self.config)
        self._interrupts = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        #: The configuration cells actually run under.  Starts as a copy
        #: of :attr:`config`; the degradation controller may turn off
        #: snapshots or halve shards here mid-run.  Only knobs excluded
        #: from the fingerprint are ever touched, so the journal (which
        #: records ``config.fingerprint()``) stays valid throughout.
        self._effective = copy.copy(self.config)
        if self._effective.supervise_dir is None and checkpoint_dir:
            self._effective.supervise_dir = checkpoint_dir
        #: Parent-side process-group ledger: watchdog/drain tree kills
        #: plus the orphan sweep at pool teardown.
        self._supervisor = StudySupervisor()
        self._degrade = DegradationController(
            enabled=self.config.auto_degrade, log=progress
        )

    @property
    def checkpoint_path(self) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, f"{self.run_id}.jsonl")

    def cells(self) -> List[CellKey]:
        """The full work grid, in deterministic (bench, technique) order."""
        return [
            (info.name, tech)
            for info in study_benchmarks(self.config)
            for tech in self.config.techniques
        ]

    # -- checkpoint backend ------------------------------------------------

    def _open_backend(self):
        """The run's checkpoint backend (store or journal), opened with
        its lease held — or ``None`` when checkpointing is disabled."""
        return open_backend(
            self.config,
            self.run_id,
            self.checkpoint_dir,
            fault_plan=self._fault_plan,
            log=self.progress,
        )

    def _record(
        self,
        completed: Dict[CellKey, dict],
        backend,
        record: dict,
    ) -> None:
        completed[(record["bench"], record["technique"])] = record
        # Degradation watches the record stream: an ``oom`` cell may turn
        # off snapshots / halve shards for every cell submitted after it.
        self._degrade.observe(record, self._effective)
        if backend is not None:
            backend.append(record)
        if self.progress:
            status = taxonomy.status_of(record)
            if taxonomy.is_success(status):
                st = record["stats"]
                bug = st["first_bug"]
                found = f"bug@{bug['index']}" if bug else "no bug"
                counters = st.get("counters")
                saved = (
                    f", saved {counters['saved_executions']} execs"
                    if counters and counters.get("saved_executions")
                    else ""
                )
                self.progress(
                    f"  {record['bench']}: {record['technique']}: {found} "
                    f"({st['schedules']} schedules{saved})"
                )
            else:
                self.progress(
                    f"  {record['bench']}: {record['technique']}: "
                    f"{status.upper()}"
                )

    # -- signal handling ---------------------------------------------------

    def _interrupted(self) -> bool:
        return self._interrupts > 0

    def _install_signals(self):
        """Install graceful-drain handlers; returns an uninstall callback.

        First SIGINT/SIGTERM sets the drain flag (the run loop notices at
        its next poll); the second hard-exits.  No-op outside the main
        thread (``signal.signal`` would raise there).
        """
        if threading.current_thread() is not threading.main_thread():
            return lambda: None
        previous = {}

        def handler(signum, frame):
            self._interrupts += 1
            if self._interrupts >= 2:
                os._exit(130)
            sys.stderr.write(
                "\ninterrupt received — draining in-flight cells "
                "(interrupt again to hard-exit)...\n"
            )
            sys.stderr.flush()

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass

        def uninstall():
            for sig, old in previous.items():
                signal.signal(sig, old)

        return uninstall

    def _resume_command(self) -> Optional[str]:
        if self.checkpoint_path is None:
            return None
        cmd = f"python -m repro.study --run-id {self.run_id}"
        if self.jobs > 1:
            cmd += f" --jobs {self.jobs}"
        if self.config.cell_shards > 1:
            # Result-affecting for Rand/PCT (index-seeded stream): the
            # resume must re-state it or the fingerprint check fails.
            cmd += f" --shards {self.config.cell_shards}"
        if self.checkpoint_dir != DEFAULT_CHECKPOINT_DIR:
            cmd += f" --checkpoint-dir {self.checkpoint_dir}"
        return cmd + "  # plus your original study flags"

    def _raise_interrupted(self, completed: Dict[CellKey, dict]) -> None:
        resume = self._resume_command()
        message = (
            f"study interrupted: {len(completed)} cell(s) journaled"
        )
        if resume:
            message += f"; resume with: {resume}"
        else:
            message += "; checkpointing was disabled, results not saved"
        raise StudyInterrupted(
            message,
            run_id=self.run_id,
            resume_command=resume,
            completed_cells=len(completed),
        )

    # -- execution ---------------------------------------------------------

    def run(self) -> StudyResult:
        config = self.config
        grid = self.cells()
        # Opening the backend first (before reading completed cells)
        # acquires the store's writer lease, so two resumes of the same
        # run cannot both observe "cell X pending" and race to run it.
        backend = self._open_backend()
        try:
            completed = backend.load() if backend is not None else {}
        except BaseException:
            if backend is not None:
                backend.close()  # release the lease; nothing ran
            raise
        retried: List[CellKey] = []
        if self.retry_errors:
            retried = [
                key
                for key in grid
                if key in completed
                and taxonomy.is_retryable(taxonomy.status_of(completed[key]))
            ]
            for key in retried:
                del completed[key]
        pending = [key for key in grid if key not in completed]
        self.executed_cells = list(pending)
        if self.progress and len(pending) < len(grid):
            by_status: Dict[str, int] = {}
            for rec in completed.values():
                st = taxonomy.status_of(rec)
                by_status[st] = by_status.get(st, 0) + 1
            summary = ", ".join(
                f"{n} {st}" for st, n in sorted(by_status.items())
            )
            msg = (
                f"resuming {self.run_id}: {len(grid) - len(pending)} of "
                f"{len(grid)} cells already complete ({summary})"
            )
            if retried:
                msg += f"; retrying {len(retried)} non-success cell(s)"
            else:
                n_retryable = sum(
                    1
                    for rec in completed.values()
                    if taxonomy.is_retryable(taxonomy.status_of(rec))
                )
                if n_retryable:
                    msg += (
                        f"; {n_retryable} non-success cell(s) kept "
                        "(--retry-errors re-runs them)"
                    )
            self.progress(msg)

        uninstall = self._install_signals()
        try:
            if self.jobs == 1:
                self._run_serial(pending, completed, backend)
            else:
                self._run_pool(pending, completed, backend)
        finally:
            uninstall()
            supervision = self._supervision_summary()
            if backend is not None:
                if supervision is not None:
                    backend.append_supervision(supervision)
                # Closing commits the run (store: closed_ts + lease
                # release, WAL folded back into the main file).
                backend.close()

        if self._interrupted():
            self._raise_interrupted(completed)

        return assemble_study(config, completed, supervision)

    def _supervision_summary(self) -> Optional[dict]:
        """What supervision had to do this run, or ``None`` when nothing
        — the fault-free journal then carries no supervision record and
        stays byte-identical to the pre-supervision format."""
        events = self._degrade.events
        sup = self._supervisor
        if not events and not sup.reaped_orphans and not sup.tree_kills:
            return None
        return {
            "degradation": [dict(ev) for ev in events],
            "reaped_orphans": sup.reaped_orphans,
            "tree_kills": sup.tree_kills,
        }

    def _backoff(self, attempt: int) -> float:
        """Seconds to wait before submission ``attempt`` (0-based): the
        first run is immediate, retry ``k`` waits ``backoff * 2**(k-1)``.
        """
        if attempt <= 0:
            return 0.0
        return self.config.retry_backoff * (2 ** (attempt - 1))

    def _run_serial(
        self,
        pending: List[CellKey],
        completed: Dict[CellKey, dict],
        backend,
    ) -> None:
        for bench, tech in pending:
            if self._interrupted():
                return
            if backend is not None:
                backend.heartbeat()
            attempt = 0
            record = _cell_worker(bench, tech, self._effective, attempt)
            while (
                taxonomy.status_of(record) in taxonomy.INRUN_RETRY_STATUSES
                and attempt + 1 < MAX_ATTEMPTS
                and not self._interrupted()
            ):
                attempt += 1
                # A resource breach degrades *before* its own retry: the
                # controller only acts on journaled records, so feed it
                # the discarded attempt (without journaling it).
                self._degrade.observe(record, self._effective)
                delay = self._backoff(attempt)
                if delay > 0:
                    time.sleep(delay)
                record = _cell_worker(bench, tech, self._effective, attempt)
            self._record(completed, backend, record)

    def _run_pool(
        self,
        pending: List[CellKey],
        completed: Dict[CellKey, dict],
        backend,
    ) -> None:
        config = self._effective
        hard_limit = config.hard_timeout_for()
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_worker_init
        )
        in_flight: Dict[object, CellKey] = {}
        running_since: Dict[object, float] = {}
        #: Submissions per cell (0-based attempt ordinal for the worker).
        attempts: Dict[CellKey, int] = {key: 0 for key in pending}
        #: Pool breaks each cell was in flight for (quarantine counter).
        crashes: Dict[CellKey, int] = {}
        #: How many of those breaks were external SIGKILLs (OOM evidence).
        sigkills: Dict[CellKey, int] = {}
        #: Cells the watchdog killed, pending their ``timeout`` record.
        overdue: Set[CellKey] = set()
        #: Cells waiting for a normal submission slot.  At most ``jobs``
        #: cells are outstanding at once, so one pool break loses at most
        #: one worker-load of cells, not the whole remaining study.
        ready: List[CellKey] = list(pending)
        #: Crash suspects, probed ONE at a time with nothing else in
        #: flight: a pool break can only be attributed to the single cell
        #: that was running, so an innocent neighbour of a crashy cell is
        #: never quarantined by association.
        suspects: List[CellKey] = []
        #: Delayed (backoff) resubmissions: (due monotonic time, key).
        backlog: List[Tuple[float, CellKey]] = []
        watchdog_fired = False

        def submit(key: CellKey) -> None:
            fut = self._pool.submit(
                _cell_worker, key[0], key[1], config, attempts[key]
            )
            attempts[key] += 1
            in_flight[fut] = key
            # Workers are lazily forked on first submit; (re-)register
            # them so tree kills and the final orphan sweep see every
            # process group this pool ever created.
            for proc in getattr(self._pool, "_processes", {}).values():
                if proc is not None and proc.pid is not None:
                    self._supervisor.register_worker(proc.pid)

        def requeue(key: CellKey) -> None:
            delay = self._backoff(attempts[key])
            if delay > 0:
                backlog.append((time.monotonic() + delay, key))
            else:
                ready.append(key)

        def handle_record(key: CellKey, record: dict) -> None:
            status = taxonomy.status_of(record)
            if (
                status in taxonomy.INRUN_RETRY_STATUSES
                and attempts[key] < MAX_ATTEMPTS
            ):
                # Resource breaches degrade before their own retry; the
                # discarded attempt is observed (not journaled) so the
                # requeued attempt runs under the go-slower knobs.
                self._degrade.observe(record, self._effective)
                requeue(key)
            else:
                self._record(completed, backend, record)

        def worker_exit_codes() -> List[int]:
            """Exit codes of the dead pool workers (best effort)."""
            procs = list(getattr(self._pool, "_processes", {}).values())
            codes = []
            deadline = time.monotonic() + 2.0
            for proc in procs:
                if proc is None:
                    continue
                self._supervisor.register_worker(proc.pid)
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.exitcode is not None:
                    codes.append(proc.exitcode)
            return codes

        def rebuild_pool(lost: List[CellKey]) -> None:
            """A worker died hard: these in-flight cells are lost.  Kill
            the pool, classify each lost cell, and re-queue survivors."""
            nonlocal watchdog_fired
            was_watchdog = watchdog_fired
            watchdog_fired = False
            # Attribution evidence first: a worker that exited on
            # -SIGKILL without our watchdog having fired was killed from
            # outside — on a loaded host that is the kernel OOM killer.
            exit_codes = worker_exit_codes()
            sigkilled = (
                not was_watchdog
                and any(code == -signal.SIGKILL for code in exit_codes)
            )
            self._pool.shutdown(wait=False)
            self._supervisor.sweep()  # no shard worker/holder outlives its worker
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_worker_init
            )
            sole_suspect = len(lost) == 1
            for k in lost:
                if k in overdue:
                    overdue.discard(k)
                    self._record(
                        completed,
                        backend,
                        error_record(
                            k[0],
                            k[1],
                            f"cell exceeded the hard watchdog limit "
                            f"({hard_limit:g}s); worker process tree killed",
                            status=taxonomy.TIMEOUT,
                        ),
                    )
                elif was_watchdog:
                    # Collateral of a watchdog kill, not a crash suspect.
                    ready.append(k)
                else:
                    # Attribute the crash only when this cell was provably
                    # alone; otherwise it is merely a suspect to probe.
                    if sole_suspect:
                        crashes[k] = crashes.get(k, 0) + 1
                        if sigkilled:
                            sigkills[k] = sigkills.get(k, 0) + 1
                    if crashes.get(k, 0) >= QUARANTINE_CRASHES:
                        if sigkills.get(k, 0) == crashes.get(k, 0):
                            # Every crash of this cell was an external
                            # SIGKILL: that is resource exhaustion, not
                            # an engine bug — classify it as such.
                            self._record(
                                completed,
                                backend,
                                error_record(
                                    k[0],
                                    k[1],
                                    f"worker killed by SIGKILL "
                                    f"{crashes[k]} times with this cell "
                                    "in flight (kernel OOM killer is the "
                                    "usual sender); cell benched",
                                    status=taxonomy.OOM,
                                ),
                            )
                        else:
                            self._record(
                                completed,
                                backend,
                                error_record(
                                    k[0],
                                    k[1],
                                    f"worker process crashed with this cell "
                                    f"in flight {crashes[k]} times; cell "
                                    "quarantined",
                                    status=taxonomy.QUARANTINED,
                                ),
                            )
                    else:
                        if not sole_suspect:
                            crashes[k] = crashes.get(k, 0) + 1
                        suspects.append(k)

        try:
            while in_flight or backlog or ready or suspects:
                if self._interrupted():
                    backlog.clear()
                    ready.clear()
                    suspects.clear()
                    self._drain(in_flight, completed, backend)
                    return
                now = time.monotonic()
                if backlog:
                    due = [k for (t, k) in backlog if t <= now]
                    backlog = [(t, k) for (t, k) in backlog if t > now]
                    ready.extend(due)
                if suspects:
                    # Isolation mode: one suspect at a time, nothing else.
                    if not in_flight:
                        submit(suspects.pop(0))
                else:
                    while ready and len(in_flight) < self.jobs:
                        submit(ready.pop(0))
                if not in_flight:
                    time.sleep(POLL_SECONDS)
                    continue
                done, _ = wait(
                    set(in_flight),
                    timeout=POLL_SECONDS,
                    return_when=FIRST_COMPLETED,
                )
                lost: List[CellKey] = []
                for fut in done:
                    key = in_flight.pop(fut)
                    running_since.pop(fut, None)
                    try:
                        record = fut.result()
                    except BrokenProcessPool:
                        lost.append(key)
                        continue
                    except BaseException as exc:
                        record = error_record(
                            key[0], key[1], f"{type(exc).__name__}: {exc}"
                        )
                    handle_record(key, record)
                if lost:
                    # The pool is broken: every other in-flight future is
                    # doomed too — salvage the ones that raced to a result
                    # before the break, count the rest as lost with them.
                    for fut in list(in_flight):
                        key = in_flight.pop(fut)
                        running_since.pop(fut, None)
                        record = None
                        if fut.done():
                            try:
                                record = fut.result()
                            except BaseException:
                                record = None
                        if record is not None:
                            handle_record(key, record)
                        else:
                            lost.append(key)
                    rebuild_pool(lost)
                    continue
                if hard_limit is None:
                    continue
                # Watchdog: kill workers whose cell has been *running*
                # (not just queued) past the hard limit.  The kill breaks
                # the pool; the next loop iteration lands in
                # ``rebuild_pool``, which records the overdue cells as
                # ``timeout`` and re-queues the collateral.
                now = time.monotonic()
                newly_overdue = False
                for fut, key in in_flight.items():
                    if not fut.running():
                        continue
                    t0 = running_since.setdefault(fut, now)
                    if now - t0 > hard_limit and key not in overdue:
                        overdue.add(key)
                        newly_overdue = True
                        if self.progress:
                            self.progress(
                                f"  {key[0]}: {key[1]}: watchdog — cell "
                                f"still running after {hard_limit:g}s, "
                                "killing worker"
                            )
                if newly_overdue:
                    watchdog_fired = True
                    self._kill_workers()
        finally:
            pool = self._pool
            self._pool = None
            if pool is not None:
                pool.shutdown(wait=True)
            # Last line of containment: anything still alive in a worker
            # process group — shard workers, parked snapshot holders —
            # is an orphan; kill and count it.
            self._supervisor.sweep()

    def _kill_workers(self) -> None:
        """Hard-kill every pool worker *tree* (pool then reports broken).

        Workers live in their own process groups (``_worker_init``), so
        the kill reaches shard workers and parked snapshot holders too —
        a watchdog firing on a cell stuck inside ``fork_map`` must not
        leave the shard pool running headless.
        """
        procs = list(getattr(self._pool, "_processes", {}).values())
        for proc in procs:
            if proc is not None and proc.is_alive():
                if not self._supervisor.kill_worker_tree(proc.pid):
                    proc.terminate()

    def _drain(
        self,
        in_flight: Dict[object, CellKey],
        completed: Dict[CellKey, dict],
        backend,
    ) -> None:
        """Graceful-stop path: cancel what never started, give running
        cells a short grace window, journal whatever finishes, then tear
        the pool down without waiting on stuck workers."""
        for fut in list(in_flight):
            if fut.cancel():
                in_flight.pop(fut)
        if in_flight:
            done, _ = wait(set(in_flight), timeout=DRAIN_GRACE_SECONDS)
            for fut in done:
                key = in_flight.pop(fut)
                try:
                    record = fut.result()
                except BaseException:
                    continue
                self._record(completed, backend, record)
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            if proc is not None and proc.is_alive():
                if not self._supervisor.kill_worker_tree(
                    proc.pid, sig=signal.SIGTERM
                ):
                    proc.terminate()
        for proc in procs:
            if proc is not None:
                proc.join(timeout=2.0)
        self._supervisor.sweep()


def run_study_parallel(
    config: Optional[StudyConfig] = None,
    jobs: Optional[int] = None,
    run_id: Optional[str] = None,
    checkpoint_dir: Optional[str] = DEFAULT_CHECKPOINT_DIR,
    progress: Optional[ProgressFn] = None,
    retry_errors: bool = False,
) -> StudyResult:
    """Convenience wrapper: build a :class:`ParallelStudyRunner` and run it."""
    return ParallelStudyRunner(
        config, jobs=jobs, run_id=run_id,
        checkpoint_dir=checkpoint_dir, progress=progress,
        retry_errors=retry_errors,
    ).run()
