"""Dynamic partial-order reduction with sleep sets (Flanagan & Godefroid).

The paper's future work (section 8) names "various partial-order reduction
techniques that reduce the number of schedules explored during systematic
testing"; its related-work section traces them to persistent sets, sleep
sets, and DPOR (POPL'05).  This module implements the classic algorithm on
top of our stateless, replay-based engine:

- **Dependency**: two operations are *dependent* iff they touch the same
  shared object (same array cell) and do not obviously commute — at least
  one writes, or both are lock-like operations on the same object.
  Independent operations may be swapped without changing the outcome.
- **Backtrack sets** (DPOR): when executing an operation, find the most
  recent earlier operation it is dependent on and not already causally
  ordered after (via vector clocks); schedule the current thread for
  exploration at that earlier point.
- **Sleep sets**: a sibling choice already explored at a point is put to
  sleep; a sleeping thread is skipped until an executed operation is
  dependent with the sleeper's pending operation.

Guarantee (tested with hypothesis against full DFS): DPOR explores a
subset of the terminal schedules, at least one per Mazurkiewicz trace —
so it finds a deadlock/assertion violation iff full DFS finds one, while
typically exploring far fewer schedules.

Scope note: the classic algorithm assumes dependencies are the only
inter-thread interaction.  Our ``AWAIT`` (value-gated busy-wait) op reads
a shared cell, and we treat it as a read for dependency purposes; this is
conservative and preserved by the property tests, which generate programs
over the full op vocabulary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..engine.executor import DEFAULT_MAX_STEPS, execute
from ..engine.state import Kernel, VisibleFilter
from ..engine.strategies import SchedulerStrategy, round_robin_choice
from ..runtime.objects import SharedArray
from ..runtime.ops import Op, OpKind
from ..runtime.program import Program
from .explorer import BugReport, ExplorationStats, Explorer

# ---------------------------------------------------------------------------
# Dependency relation
# ---------------------------------------------------------------------------

_READS = frozenset({OpKind.LOAD, OpKind.AWAIT})
_WRITES = frozenset({OpKind.STORE, OpKind.RMW, OpKind.CAS})
_LOCKLIKE = frozenset(
    {
        OpKind.LOCK,
        OpKind.REACQUIRE,
        OpKind.UNLOCK,
        OpKind.TRYLOCK,
        OpKind.COND_WAIT,
        OpKind.COND_SIGNAL,
        OpKind.COND_BROADCAST,
        OpKind.BARRIER_WAIT,
        OpKind.SEM_WAIT,
        OpKind.SEM_POST,
        OpKind.RW_RDLOCK,
        OpKind.RW_WRLOCK,
        OpKind.RW_UNLOCK,
    }
)
_LOCAL = frozenset(
    {OpKind.YIELD, OpKind.NOOP, OpKind.THREAD_START, OpKind.SPAWN, OpKind.SPAWN_MANY,
     OpKind.JOIN}
)


def _target_key(op: Op) -> Optional[Tuple[int, Any]]:
    """Identity of the shared object an op touches (None = thread-local)."""
    if op.kind in _LOCAL:
        return None
    target = op.target
    if op.kind is OpKind.COND_WAIT:
        # Interacts with both the condvar and the mutex; key on the condvar
        # (the mutex interaction is covered by the implicit release, which
        # we conservatively include by treating cond ops as lock-like on
        # the mutex too via `extra_key`).
        return (id(target), None)
    if isinstance(target, SharedArray) and op.kind in (OpKind.LOAD, OpKind.STORE):
        return (id(target), op.arg)
    return (id(target), None)


def _extra_key(op: Op) -> Optional[Tuple[int, Any]]:
    if op.kind is OpKind.COND_WAIT:
        return (id(op.arg), None)  # the mutex released/reacquired
    return None


def dependent(a: Op, b: Op) -> bool:
    """Whether two operations may not commute."""
    ka, kb = a.kind, b.kind
    if ka in _LOCAL or kb in _LOCAL:
        return False
    keys_a = {_target_key(a), _extra_key(a)} - {None}
    keys_b = {_target_key(b), _extra_key(b)} - {None}
    if not (keys_a & keys_b):
        return False
    # Same object: reads commute with reads; everything else conflicts.
    a_reads = ka in _READS
    b_reads = kb in _READS
    if a_reads and b_reads:
        return False
    return True


# ---------------------------------------------------------------------------
# Vector clocks (local lightweight variant keyed by tid)
# ---------------------------------------------------------------------------

Clock = Dict[int, int]


def _join(a: Clock, b: Clock) -> Clock:
    out = dict(a)
    for k, v in b.items():
        if v > out.get(k, 0):
            out[k] = v
    return out


def _leq(a: Clock, b: Clock) -> bool:
    return all(v <= b.get(k, 0) for k, v in a.items())


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------


class _Point:
    """One scheduling point on the current DFS path.

    A *step* is the visible operation chosen here plus the invisible data
    accesses that execute with it (under racy-site filtering, most memory
    traffic is invisible and piggybacks on the preceding visible op) — so
    the dependency analysis works on the step's full footprint, not just
    the visible op.
    """

    __slots__ = (
        "chosen",
        "enabled",
        "backtrack",
        "done",
        "sleep",
        "op",
        "reads",
        "writes",
        "suffix_clean",
        "clock",
        "tid",
        "increments",
        "cost_before",
    )

    def __init__(self, enabled: Tuple[int, ...], sleep: Set[int]) -> None:
        self.enabled = enabled
        self.backtrack: Set[int] = set()
        self.done: Set[int] = set()
        #: Threads asleep at this point (sleep-set reduction).
        self.sleep: Set[int] = set(sleep)
        self.chosen: Optional[int] = None
        self.op: Optional[Op] = None          # visible op executed here
        self.reads: Set[Tuple[int, Any]] = set()
        self.writes: Set[Tuple[int, Any]] = set()
        #: True when the step carried no invisible data accesses, i.e. the
        #: visible op alone determines its dependencies.
        self.suffix_clean = True
        self.clock: Clock = {}                # vector clock of that step
        self.tid: Optional[int] = None
        #: Preemption cost of scheduling each enabled thread here (0/1) and
        #: the cumulative path cost before this point — fixed once the
        #: point is created (they depend only on the prefix), used by the
        #: bounded variant (Coons et al.'s BPOR combination).
        self.increments: Dict[int, int] = {}
        self.cost_before = 0

    def reset_run_state(self) -> None:
        self.op = None
        self.reads = set()
        self.writes = set()
        self.suffix_clean = True
        self.clock = {}
        self.tid = None

    def candidates(self, bound: Optional[int] = None) -> Set[int]:
        """Unexplored backtrack candidates.

        Unbounded: sleep-set filtering applies (a sleeping sibling's
        subtree was fully explored, so re-running it is redundant).
        Bounded: the bound may have truncated the sibling's subtree, so
        the sleep-set argument no longer holds — sleeping candidates are
        only skipped when an awake one exists, and every candidate must be
        affordable within the bound."""
        base = self.backtrack - self.done
        if bound is not None:
            base = {
                t for t in base if self.cost_before + self.increments.get(t, 1) <= bound
            }
            awake = base - self.sleep
            return awake if awake else base
        return base - self.sleep


def _steps_dependent(a: "_Point", b: "_Point") -> bool:
    """Do two completed steps conflict (visible ops or data footprints)?"""
    if a.op is None or b.op is None:
        return False
    if dependent(a.op, b.op):
        return True
    if a.writes & (b.reads | b.writes):
        return True
    if b.writes & a.reads:
        return True
    return False


class _RedundantBranch(Exception):
    """Raised mid-execution when every enabled thread is asleep: the rest
    of this branch is covered by an already-explored sibling."""


class _DPORStrategy(SchedulerStrategy):
    """Replays stack decisions, extends with a default policy, collects
    per-step footprints (as an ExecutionObserver), and runs the DPOR
    analysis for each step once its footprint is complete."""

    def __init__(self, dpor: "DPORExplorer") -> None:
        self.dpor = dpor
        self._current: Optional[_Point] = None

    # -- ExecutionObserver side --------------------------------------------

    def on_start(self, shared: Any) -> None:
        pass

    def on_wake(self, waker: int, woken: int, obj: Any) -> None:
        pass

    def on_finish(self, result: Any) -> None:
        pass

    def on_step(self, tid: int, op: Op, result: Any, visible: bool) -> None:
        point = self._current
        if point is None:
            return
        if visible:
            return  # the visible op was captured in choose()
        # Invisible data access: extend the current step's footprint.
        key = _target_key(op)
        if key is None:
            return
        point.suffix_clean = False
        if op.kind in _WRITES:
            point.writes.add(key)
        else:
            point.reads.add(key)

    # -- SchedulerStrategy side ---------------------------------------------

    def choose(
        self, step_index: int, enabled: Tuple[int, ...], last_tid: int, kernel: Kernel
    ) -> int:
        dpor = self.dpor
        stack = dpor._stack
        # The previous step's footprint is now complete: analyse it.
        if step_index > 0:
            dpor._analyse(step_index - 1)
        if step_index < len(stack):
            point = stack[step_index]
            tid = point.chosen
            assert tid is not None and tid in enabled
            point.reads = set()
            point.writes = set()
            point.suffix_clean = True
        else:
            # New frontier point: inherit the sleep set from the parent.  A
            # sleeper stays asleep only when the parent step provably
            # commutes with its pending op; a step that carried invisible
            # data accesses might conflict with the sleeper's (unknown)
            # future footprint, so it wakes everyone — conservative but
            # sound.
            sleep: Set[int] = set()
            if stack:
                parent = stack[-1]
                if parent.suffix_clean and parent.op is not None:
                    for s in parent.sleep:
                        pending = (
                            kernel.threads[s].pending
                            if s < len(kernel.threads)
                            else None
                        )
                        if pending is not None and not dependent(parent.op, pending):
                            sleep.add(s)
            point = _Point(enabled, sleep)
            point.increments = {
                t: (1 if t != last_tid and last_tid in enabled else 0)
                for t in enabled
            }
            if stack:
                parent = stack[-1]
                point.cost_before = parent.cost_before + parent.increments.get(
                    parent.chosen, 0
                )
            bound = dpor.preemption_bound
            if bound is None:
                selectable = [t for t in enabled if t not in sleep]
                if not selectable:
                    raise _RedundantBranch()
            else:
                affordable = [
                    t
                    for t in enabled
                    if point.cost_before + point.increments[t] <= bound
                ]
                if len(affordable) < len(enabled):
                    dpor.bound_pruned = True
                selectable = [t for t in affordable if t not in sleep] or affordable
                if not selectable:
                    raise _RedundantBranch()
            tid = round_robin_choice(tuple(selectable), last_tid, kernel.num_created)
            point.backtrack.add(tid)
            stack.append(point)
        point.chosen = tid
        # Record the visible op and seed the footprint with it.
        op = kernel.threads[tid].pending
        point.op = op
        point.tid = tid
        if op is not None:
            key = _target_key(op)
            if key is not None and op.kind in (OpKind.LOAD, OpKind.STORE):
                (point.writes if op.kind in _WRITES else point.reads).add(key)
        self._current = point
        return tid


class DPORExplorer(Explorer):
    """Depth-first search with dynamic partial-order reduction + sleep sets."""

    technique = "DPOR"

    def __init__(
        self,
        *,
        visible_filter: Optional[VisibleFilter] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        stop_at_first_bug: bool = False,
        preemption_bound: Optional[int] = None,
    ) -> None:
        self.visible_filter = visible_filter
        self.max_steps = max_steps
        self.stop_at_first_bug = stop_at_first_bug
        #: When set, explore only schedules with at most this many
        #: preemptions, with Coons-style conservative backtrack points
        #: preserving bounded coverage (BPOR).
        self.preemption_bound = preemption_bound
        if preemption_bound is not None:
            self.technique = f"BPOR({preemption_bound})"
        #: Set during explore() when the bound cut off any candidate —
        #: i.e. raising the bound could reach more schedules.
        self.bound_pruned = False
        self._stack: List[_Point] = []
        self._thread_clock: Dict[int, Clock] = {}

    def _analyse(self, j: int) -> None:
        """Clock + backtrack analysis for the completed step ``j``.

        Runs every execution (backtrack-set union is idempotent).  Walks
        every dependent, non-happens-before predecessor from the most
        recent backwards; at the first point where the stepping thread was
        enabled, scheduling it there reverses the race — record it and
        stop.  At points where it was blocked (e.g. the predecessor is the
        mutex release that re-enabled it) the add-all-enabled fallback is
        a no-op, so keep walking: this is what makes lock-order deadlocks
        reachable (the acquire/acquire race registers at the earlier
        acquire, not at the release)."""
        stack = self._stack
        point = stack[j]
        if point.clock:
            return  # already analysed this run
        q = point.tid
        if q is None or point.op is None:
            return
        base = self._thread_clock.get(q, {})
        clock = dict(base)
        registered = False
        for i in range(j - 1, -1, -1):
            prev = stack[i]
            if prev.op is None or prev.tid == q:
                continue
            if not _steps_dependent(prev, point):
                continue
            clock = _join(clock, prev.clock)
            if not registered and not _leq(prev.clock, base):
                if q in prev.enabled:
                    prev.backtrack.add(q)
                    registered = True
                else:
                    prev.backtrack.update(prev.enabled)
                if self.preemption_bound is not None:
                    # Conservative backtrack point (BPOR): scheduling q at
                    # i may blow the budget there; also schedule it at the
                    # most recent earlier point where running q is *free*
                    # (a non-preemptive switch), so the reversal stays
                    # reachable within the bound.
                    for k in range(i, -1, -1):
                        earlier = stack[k]
                        if (
                            q in earlier.enabled
                            and earlier.increments.get(q, 1) == 0
                        ):
                            earlier.backtrack.add(q)
                            break
        clock[q] = clock.get(q, 0) + 1
        point.clock = clock
        self._thread_clock[q] = clock

    def explore(self, program: Program, limit: int) -> ExplorationStats:
        stats = ExplorationStats(self.technique, program.name, limit)
        self._stack = []
        self.bound_pruned = False
        while True:
            self._thread_clock = {}
            for p in self._stack:
                p.reset_run_state()
            strategy = _DPORStrategy(self)
            try:
                result = execute(
                    program,
                    strategy,
                    max_steps=self.max_steps,
                    visible_filter=self.visible_filter,
                    observers=(strategy,),
                    record_enabled=True,
                )
            except _RedundantBranch:
                result = None  # branch covered by an explored sibling
            else:
                if self._stack:
                    self._analyse(len(result.schedule) - 1)
            stats.executions += 1
            if result is not None:
                stats.observe_run(result)
                if result.outcome.is_terminal_schedule:
                    stats.schedules += 1
                    stats.observe_leaks(result)
                    if result.is_buggy:
                        stats.buggy_schedules += 1
                        if stats.first_bug is None:
                            stats.first_bug = BugReport.from_result(
                                program.name, result, None, stats.schedules
                            )
                            if self.stop_at_first_bug:
                                return stats
                    if stats.schedules >= limit:
                        return stats
            if not self._backtrack():
                stats.completed = True
                return stats

    def _backtrack(self) -> bool:
        """Advance to the deepest point with an unexplored backtrack
        candidate; returns False when the search is complete."""
        stack = self._stack
        while stack:
            point = stack[-1]
            if point.chosen is not None:
                point.done.add(point.chosen)
                point.sleep.add(point.chosen)
                point.chosen = None
            bound = self.preemption_bound
            if bound is not None:
                base = point.backtrack - point.done
                affordable = {
                    t
                    for t in base
                    if point.cost_before + point.increments.get(t, 1) <= bound
                }
                if affordable != base:
                    self.bound_pruned = True
            candidates = point.candidates(self.preemption_bound)
            if candidates:
                point.chosen = min(candidates)
                point.reset_run_state()
                return True
            stack.pop()
        return False


class IterativeBPORExplorer(Explorer):
    """Iterative bounded partial-order reduction (IBPOR).

    The POR analogue of the study's IPB: explore all partial-order
    representatives reachable within preemption bound 0, then 1, etc.
    Unlike :class:`~repro.core.iterative.IterativeBoundingExplorer`, the
    per-bound searches cannot share distinct-schedule accounting (each
    bound induces different Mazurkiewicz representatives), so
    ``schedules`` counts every execution across iterations; the per-bound
    explorer's ``bound_pruned`` flag decides when raising the bound can no
    longer reach anything new.
    """

    technique = "IBPOR"

    def __init__(
        self,
        *,
        visible_filter: Optional[VisibleFilter] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_bound: int = 64,
    ) -> None:
        self.visible_filter = visible_filter
        self.max_steps = max_steps
        self.max_bound = max_bound

    def explore(self, program: Program, limit: int) -> ExplorationStats:
        stats = ExplorationStats(self.technique, program.name, limit)
        for bound in range(self.max_bound + 1):
            stats.bound = bound
            inner = DPORExplorer(
                visible_filter=self.visible_filter,
                max_steps=self.max_steps,
                preemption_bound=bound,
                stop_at_first_bug=True,
            )
            sub = inner.explore(program, max(1, limit - stats.schedules))
            stats.executions += sub.executions
            stats.schedules += sub.schedules
            stats.new_schedules_at_bound = sub.schedules
            stats.buggy_schedules += sub.buggy_schedules
            stats.step_limit_hits += sub.step_limit_hits
            stats.livelock_hits += sub.livelock_hits
            stats.max_lasso = max(stats.max_lasso, sub.max_lasso)
            stats.aborts += sub.aborts
            for kind, count in sub.abort_kinds.items():
                stats.abort_kinds[kind] = stats.abort_kinds.get(kind, 0) + count
            if stats.first_abort is None:
                stats.first_abort = sub.first_abort
            for label, count in sub.leaks.items():
                stats.leaks[label] = stats.leaks.get(label, 0) + count
            stats.max_enabled = max(stats.max_enabled, sub.max_enabled)
            stats.max_choice_points = max(
                stats.max_choice_points, sub.max_choice_points
            )
            stats.threads_created = max(stats.threads_created, sub.threads_created)
            if sub.first_bug is not None and stats.first_bug is None:
                stats.first_bug = BugReport(
                    sub.first_bug.program_name,
                    sub.first_bug.outcome,
                    sub.first_bug.message,
                    sub.first_bug.schedule,
                    bound,
                    stats.schedules,
                    traceback=sub.first_bug.traceback,
                )
                return stats
            if stats.schedules >= limit:
                return stats
            if sub.completed and not inner.bound_pruned:
                stats.completed = True
                return stats
        return stats
