"""Bounded partial-order reduction (DPOR + preemption bound).

Combining DPOR with schedule bounding naively is unsound — the bound can
prune the representative schedule DPOR was counting on.  The Coons et al.
fix (conservative backtrack points, OOPSLA'13 — cited by the paper as
recent/ongoing work) schedules the racing thread additionally at the most
recent point where running it is non-preemptive.  The gate here is the
hypothesis test: on random programs, **BPOR(c) finds a bug iff a buggy
schedule with at most c preemptions exists** (checked against preemption-
bounded DFS), while exploring no more schedules.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PREEMPTION, BoundedDFS
from repro.core.dpor import DPORExplorer

from .programs import figure1, lock_order_deadlock, unsafe_counter
from .test_properties import build_program, program_st


def bounded_dfs_outcome(program, bound, limit=50_000):
    found = 0
    total = 0
    for record in BoundedDFS(program, PREEMPTION, bound).runs():
        if record.result.outcome.is_terminal_schedule:
            total += 1
            if record.result.is_buggy:
                found += 1
        assert total <= limit
    return found > 0, total


class TestBPORKnownPrograms:
    def test_figure1_bug_at_bound_one_not_zero(self):
        program = figure1()
        b0 = DPORExplorer(preemption_bound=0).explore(program, 50_000)
        b1 = DPORExplorer(preemption_bound=1).explore(program, 50_000)
        assert not b0.found_bug
        assert b1.found_bug

    def test_bounded_explores_fewer_than_bounded_dfs(self):
        program = figure1()
        _, dfs_total = bounded_dfs_outcome(program, 1)
        bpor = DPORExplorer(preemption_bound=1).explore(program, 50_000)
        assert bpor.found_bug
        assert bpor.schedules <= dfs_total

    def test_deadlock_needs_one_preemption(self):
        program = lock_order_deadlock()
        assert not DPORExplorer(preemption_bound=0).explore(program, 50_000).found_bug
        assert DPORExplorer(preemption_bound=1).explore(program, 50_000).found_bug

    def test_unbounded_equals_none_bound(self):
        program = unsafe_counter()
        plain = DPORExplorer().explore(program, 50_000)
        big = DPORExplorer(preemption_bound=64).explore(program, 50_000)
        assert plain.found_bug == big.found_bug

    def test_technique_label(self):
        assert DPORExplorer(preemption_bound=2).technique == "BPOR(2)"
        assert DPORExplorer().technique == "DPOR"


class TestIterativeBPOR:
    def test_finds_figure1_at_bound_one_cheaply(self):
        from repro.core.dpor import IterativeBPORExplorer

        stats = IterativeBPORExplorer().explore(figure1(), 50_000)
        assert stats.found_bug
        assert stats.bound == 1
        # IPB needs 11 distinct schedules for the same bound (Example 2);
        # the POR variant gets there in a handful of executions.
        assert stats.schedules <= 11

    def test_safe_program_completes_without_pruning(self):
        from repro.core.dpor import IterativeBPORExplorer
        from .programs import safe_counter

        stats = IterativeBPORExplorer().explore(safe_counter(2), 50_000)
        assert not stats.found_bug
        assert stats.completed

    def test_agrees_with_ipb_on_bound(self):
        from repro.core import make_ipb
        from repro.core.dpor import IterativeBPORExplorer
        from .programs import unsafe_counter

        program = unsafe_counter()
        ipb = make_ipb().explore(program, 50_000)
        ibpor = IterativeBPORExplorer().explore(program, 50_000)
        assert ibpor.found_bug == ipb.found_bug
        assert ibpor.bound == ipb.bound

    @given(threads=program_st)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_ibpor_matches_ipb_bound_and_verdict(self, threads):
        """On random programs the iterative POR driver agrees with IPB on
        both whether a bug exists and the smallest exposing bound."""
        from repro.core import make_ipb
        from repro.core.dpor import IterativeBPORExplorer

        program = build_program(threads)
        ipb = make_ipb().explore(program, 50_000)
        ibpor = IterativeBPORExplorer().explore(program, 50_000)
        assert ibpor.found_bug == ipb.found_bug
        if ipb.found_bug:
            assert ibpor.bound == ipb.bound


class TestBPORSoundnessProperty:
    @given(threads=program_st, bound=st.integers(0, 2))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bpor_matches_bounded_dfs_verdict(self, threads, bound):
        program = build_program(threads)
        dfs_found, dfs_total = bounded_dfs_outcome(program, bound)
        bpor = DPORExplorer(preemption_bound=bound).explore(program, 50_000)
        assert bpor.completed
        assert bpor.found_bug == dfs_found, (
            f"bound {bound}: BPOR {'found' if bpor.found_bug else 'missed'}, "
            f"bounded DFS {'found' if dfs_found else 'missed'}"
        )
        assert bpor.schedules <= dfs_total
