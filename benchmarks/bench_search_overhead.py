"""Search-overhead benchmark: replay elimination across four layers.

Four sections, all landing in ``BENCH_search.json``:

**frontier** — restart-per-bound vs frontier resumption.  For each
subject the script runs iterative bounding twice — the classic restart
backend (``resume_frontier=False``) and the frontier-resuming backend
(default) — asserts their ``as_dict()`` stats are byte-identical, and
records executions, visible steps, replayed steps, saved executions and
wall-clock for both.  Subjects are chosen so both regimes show up:

- the *exhaustive* group (fixed twins of sctbench programs — bug-free, so
  iterative bounding drains the whole space through final bounds 3-8):
  here restart re-execution dominates and frontier resumption must cut
  ``executions`` by >= 2x (enforced unless ``--no-check``);
- the *limit-hit* control (``chess.WSQ``): the schedule limit lands inside
  bound 2, the final bound dominates, and the saving is structurally small
  — recorded to keep the report honest, not subject to the 2x floor.

**snapshots** — end-to-end wall clock of fork-based COW prefix snapshots
(``snapshots=True``, :mod:`repro.engine.snapshot`) on the deep-prelude
account twin, whose schedule tree hangs below a ~768-step single-threaded
warm-up with real per-step computation.  Exhaustive DFS re-walks that
prefix once per schedule; snapshots resume forked live images instead and
must cut wall-clock by >= 2x with byte-identical stats (enforced unless
``--no-check``).

**frontier_snapshots** — the same deep-prelude subject under iterative
bounding (IPB and IDB).  This used to be the honest ~1.0x control row:
the frontier backend re-rooted every bound-``c+1`` subtree from step 0,
so snapshots only removed intra-subtree replay.  Cross-bound parked
holders close that gap — bound-pruned frontier entries keep a live COW
image and later bounds resume from it with zero prefix replay — so both
techniques are now gated: wall-clock ratio >= 2x, byte-identical stats,
and ``replayed_steps`` driven to (near) zero with the eliminated share
accounted as ``snapshot_restored_steps`` (enforced unless
``--no-check``).

**vclock** — the batched (SWAR-packed big-int)
:class:`~repro.racedetect.vectorclock.VectorClock` vs the sparse
``DictVectorClock`` reference on a FastTrack-shaped operation mix
(tick, release copy, lock/acquire joins, epoch check) at 8 and 32
threads.  Identical final clock states required; floors: within noise of
the dict at 8 threads (>= 0.7x), clearly ahead at 32 (>= 1.2x) — the
batching win grows with thread count.

Run:  PYTHONPATH=src python benchmarks/bench_search_overhead.py
      [--limit N] [--out BENCH_search.json] [--subjects a,b,...]
      [--techniques IPB,IDB]
      [--sections frontier,snapshots,frontier_snapshots,vclock]
      [--no-check]

Exit status is non-zero when any equivalence check fails or a gated
section misses its floor.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import DFSExplorer, make_idb, make_ipb
from repro.engine import snapshot as snapshot_mod
from repro.racedetect.vectorclock import DictVectorClock, VectorClock
from repro.sctbench import get as get_benchmark
from repro.sctbench.fixed import (
    make_account_fixed,
    make_counter_fixed,
    make_ctrace_fixed,
    make_prelude_fixed,
    make_reorder_fixed,
    make_stack_fixed,
)

#: name -> (factory, exhaustive?).  Exhaustive subjects complete their
#: whole schedule space below the limit, at a final bound >= 2.
SUBJECTS = {
    "fixed.account": (make_account_fixed, True),
    "fixed.counter": (make_counter_fixed, True),
    "fixed.stack": (make_stack_fixed, True),
    "fixed.ctrace": (make_ctrace_fixed, True),
    "fixed.reorder": (make_reorder_fixed, True),
    "chess.WSQ": (lambda: get_benchmark("chess.WSQ").make(), False),
}

MAKERS = {"IPB": make_ipb, "IDB": make_idb}


def run_cell(name: str, factory, technique: str, limit: int) -> dict:
    make = MAKERS[technique]
    t0 = time.perf_counter()
    naive = make(resume_frontier=False, counters=True).explore(factory(), limit)
    t1 = time.perf_counter()
    frontier = make(resume_frontier=True, counters=True).explore(factory(), limit)
    t2 = time.perf_counter()
    ratio = naive.executions / max(1, frontier.executions)
    return {
        "subject": name,
        "technique": technique,
        "limit": limit,
        "stats_identical": naive.as_dict() == frontier.as_dict(),
        "final_bound": frontier.bound,
        "completed": frontier.completed,
        "schedules": frontier.schedules,
        "naive": {
            "executions": naive.executions,
            "counters": naive.counters.to_payload(),
            "seconds": round(t1 - t0, 4),
        },
        "frontier": {
            "executions": frontier.executions,
            "counters": frontier.counters.to_payload(),
            "seconds": round(t2 - t1, 4),
        },
        "execution_ratio": round(ratio, 3),
    }


#: Snapshot end-to-end subjects: (technique, gated?).  DFS is the headline
#: single-tree case — snapshots eliminate *all* prefix replay.
SNAPSHOT_TECHNIQUES = (("DFS", True),)

#: Iterative-bounding subjects for the cross-bound holder path; both are
#: gated now that frontier entries resume from parked live images.
FRONTIER_SNAPSHOT_TECHNIQUES = (("IPB", True), ("IDB", True))


def run_snapshot_cell(technique: str, gated: bool, limit: int) -> dict:
    """Serial vs ``snapshots=True`` wall clock on the deep-prelude twin."""
    factory = make_prelude_fixed
    makers = {
        "DFS": lambda **kw: DFSExplorer(max_steps=4000, counters=True, **kw),
        "IPB": lambda **kw: make_ipb(max_steps=4000, counters=True, **kw),
        "IDB": lambda **kw: make_idb(max_steps=4000, counters=True, **kw),
    }
    make = makers[technique]
    t0 = time.perf_counter()
    serial = make().explore(factory(), limit)
    t1 = time.perf_counter()
    snapped = make(snapshots=True).explore(factory(), limit)
    t2 = time.perf_counter()
    serial_s, snap_s = t1 - t0, t2 - t1
    return {
        "subject": "fixed.prelude",
        "technique": technique,
        "limit": limit,
        "gated": gated,
        "stats_identical": serial.as_dict() == snapped.as_dict(),
        "schedules": snapped.schedules,
        "completed": snapped.completed,
        "serial": {
            "seconds": round(serial_s, 4),
            "counters": serial.counters.to_payload(),
        },
        "snapshots": {
            "seconds": round(snap_s, 4),
            "counters": snapped.counters.to_payload(),
        },
        "wall_clock_ratio": round(serial_s / max(1e-9, snap_s), 3),
    }


def _vclock_workload(clock_cls, threads: int, iters: int = 40_000) -> tuple:
    """A FastTrack-shaped hot loop: per iteration one thread ticks,
    releases a lock (clock copy + join into the lock clock), the next
    thread acquires (join), and runs the epoch fast-path check — the
    detector's per-step op mix, minus the executor around it."""
    tclocks = [clock_cls({t: 1}) for t in range(threads)]
    lock = clock_cls()
    t0 = time.perf_counter()
    for i in range(iters):
        t = i % threads
        vc = tclocks[t]
        vc.tick(t)
        lock.join(vc)
        released = vc.copy()
        nxt = tclocks[(t + 1) % threads]
        nxt.join(released)
        nxt.covers_epoch(vc.epoch(t))
    seconds = time.perf_counter() - t0
    state = [dict(c.items()) for c in tclocks] + [dict(lock.items())]
    return seconds, state


def run_vclock_cell() -> dict:
    """Packed big-int clock vs the dict reference on the FastTrack mix."""
    cell: dict = {"workload": "fasttrack-mix", "threads": {}}
    identical = True
    for threads in (8, 32):
        dict_s, dict_state = _vclock_workload(DictVectorClock, threads)
        packed_s, packed_state = _vclock_workload(VectorClock, threads)
        identical = identical and dict_state == packed_state
        cell["threads"][str(threads)] = {
            "dict_seconds": round(dict_s, 4),
            "packed_seconds": round(packed_s, 4),
            "speedup": round(dict_s / max(1e-9, packed_s), 3),
        }
    cell["states_identical"] = identical
    return cell


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--limit", type=int, default=20_000)
    parser.add_argument("--out", default="BENCH_search.json")
    parser.add_argument(
        "--subjects", default=",".join(SUBJECTS),
        help="comma-separated subset of: " + ", ".join(SUBJECTS),
    )
    parser.add_argument("--techniques", default="IPB,IDB")
    parser.add_argument(
        "--sections", default="frontier,snapshots,frontier_snapshots,vclock",
        help="comma-separated subset of: frontier, snapshots, "
             "frontier_snapshots, vclock",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="record results without enforcing the floors",
    )
    args = parser.parse_args(argv)
    sections = {s.strip() for s in args.sections.split(",") if s.strip()}

    cells = []
    failures = []
    subjects = args.subjects.split(",") if "frontier" in sections else []
    for name in subjects:
        factory, exhaustive = SUBJECTS[name.strip()]
        for technique in args.techniques.split(","):
            cell = run_cell(name.strip(), factory, technique.strip(), args.limit)
            cell["exhaustive"] = exhaustive
            cells.append(cell)
            ratio = cell["execution_ratio"]
            tag = f"{cell['subject']} {cell['technique']}"
            print(
                f"{tag:24s} bound={cell['final_bound']} "
                f"schedules={cell['schedules']:>6} "
                f"executions {cell['naive']['executions']:>6} -> "
                f"{cell['frontier']['executions']:>6} "
                f"(x{ratio:.2f}, saved "
                f"{cell['frontier']['counters']['saved_executions']})"
            )
            if not cell["stats_identical"]:
                failures.append(f"{tag}: as_dict() diverged between backends")
            if cell["frontier"]["executions"] > cell["naive"]["executions"]:
                failures.append(f"{tag}: frontier executed MORE than restart")
            if exhaustive and not args.no_check and ratio < 2.0:
                failures.append(f"{tag}: execution ratio {ratio:.2f} < 2.0")

    snapshot_cells = []
    if "snapshots" in sections:
        if snapshot_mod.fork_available():
            for technique, gated in SNAPSHOT_TECHNIQUES:
                cell = run_snapshot_cell(technique, gated, args.limit)
                snapshot_cells.append(cell)
                tag = f"{cell['subject']} {technique} snapshots"
                print(
                    f"{tag:32s} schedules={cell['schedules']:>5} "
                    f"wall {cell['serial']['seconds']:>7.3f}s -> "
                    f"{cell['snapshots']['seconds']:>7.3f}s "
                    f"(x{cell['wall_clock_ratio']:.2f})"
                )
                if not cell["stats_identical"]:
                    failures.append(f"{tag}: as_dict() diverged")
                if gated and not args.no_check and cell["wall_clock_ratio"] < 2.0:
                    failures.append(
                        f"{tag}: wall-clock ratio "
                        f"{cell['wall_clock_ratio']:.2f} < 2.0"
                    )
        else:
            print("snapshots: os.fork unavailable, section skipped")

    frontier_snapshot_cells = []
    if "frontier_snapshots" in sections:
        if snapshot_mod.fork_available():
            for technique, gated in FRONTIER_SNAPSHOT_TECHNIQUES:
                cell = run_snapshot_cell(technique, gated, args.limit)
                frontier_snapshot_cells.append(cell)
                tag = f"{cell['subject']} {technique} frontier-snapshots"
                snap_counters = cell["snapshots"]["counters"]
                print(
                    f"{tag:32s} schedules={cell['schedules']:>5} "
                    f"wall {cell['serial']['seconds']:>7.3f}s -> "
                    f"{cell['snapshots']['seconds']:>7.3f}s "
                    f"(x{cell['wall_clock_ratio']:.2f}, replayed "
                    f"{cell['serial']['counters']['replayed_steps']} -> "
                    f"{snap_counters['replayed_steps']})"
                )
                if not cell["stats_identical"]:
                    failures.append(f"{tag}: as_dict() diverged")
                if gated and not args.no_check:
                    if cell["wall_clock_ratio"] < 2.0:
                        failures.append(
                            f"{tag}: wall-clock ratio "
                            f"{cell['wall_clock_ratio']:.2f} < 2.0"
                        )
                    serial_replayed = cell["serial"]["counters"][
                        "replayed_steps"
                    ]
                    if (
                        snap_counters["snapshot_restored_steps"] == 0
                        or snap_counters["replayed_steps"]
                        > 0.05 * max(1, serial_replayed)
                    ):
                        failures.append(
                            f"{tag}: prefix replay not eliminated "
                            f"({snap_counters['replayed_steps']} replayed, "
                            f"{snap_counters['snapshot_restored_steps']} "
                            "restored)"
                        )
        else:
            print("frontier_snapshots: os.fork unavailable, section skipped")

    vclock = None
    if "vclock" in sections:
        vclock = run_vclock_cell()
        for threads, row in vclock["threads"].items():
            print(
                f"{'vclock fasttrack-mix T=' + threads:32s} "
                f"wall {row['dict_seconds']:>7.3f}s -> "
                f"{row['packed_seconds']:>7.3f}s (x{row['speedup']:.2f})"
            )
        if not vclock["states_identical"]:
            failures.append("vclock: clock states diverged between backends")
        if not args.no_check:
            floors = {"8": 0.7, "32": 1.2}
            for threads, floor in floors.items():
                speedup = vclock["threads"][threads]["speedup"]
                if speedup < floor:
                    failures.append(
                        f"vclock T={threads}: x{speedup:.2f} < {floor}"
                    )

    exhaustive_ratios = [c["execution_ratio"] for c in cells if c["exhaustive"]]
    gated_snapshot_ratios = [
        c["wall_clock_ratio"] for c in snapshot_cells if c["gated"]
    ]
    gated_frontier_ratios = [
        c["wall_clock_ratio"] for c in frontier_snapshot_cells if c["gated"]
    ]
    payload = {
        "bench": "search_overhead",
        "limit": args.limit,
        "cells": cells,
        "snapshot_cells": snapshot_cells,
        "frontier_snapshot_cells": frontier_snapshot_cells,
        "vector_clock": vclock,
        "summary": {
            "subjects": len({c["subject"] for c in cells}),
            "all_stats_identical": all(c["stats_identical"] for c in cells)
            and all(c["stats_identical"] for c in snapshot_cells)
            and all(c["stats_identical"] for c in frontier_snapshot_cells),
            "min_exhaustive_ratio": min(exhaustive_ratios, default=None),
            "max_exhaustive_ratio": max(exhaustive_ratios, default=None),
            "min_gated_snapshot_ratio": min(gated_snapshot_ratios, default=None),
            "min_gated_frontier_snapshot_ratio": min(
                gated_frontier_ratios, default=None
            ),
            "vclock_speedups": None if vclock is None else {
                t: row["speedup"] for t, row in vclock["threads"].items()
            },
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
