"""Kernel state for one controlled execution.

The :class:`Kernel` plays the role of the OS scheduler + pthread library
that Maple (via PIN) interposes on: it owns every thread's generator,
services operation requests, tracks blocking, and exposes the *enabled set*
that scheduler strategies choose from.

Semantics notes (mapping to the paper's model, section 2):

- A thread is *poised* at its next visible op; the scheduling point is just
  before that op.  ``enabled()`` returns poised threads whose op's
  precondition holds (mutex free, join target finished, ...).
- Executing a step = executing the poised visible op, then running the
  thread's generator through any *invisible* operations (data accesses at
  non-racy sites) until it is poised at the next visible op.  This matches
  the paper's definition of a step as "a visible operation followed by a
  finite sequence of invisible operations".
- ``cond_wait`` and ``barrier_wait`` park the thread (status ``WAITING``)
  *after* executing; waking re-poises it at an engine-generated
  continuation op (mutex reacquire / no-op), which is itself a visible
  step — the same behaviour a pthread SCT tool observes.
"""

from __future__ import annotations

import enum
import warnings
from bisect import insort
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..runtime.context import ThreadContext, ThreadHandle
from ..runtime.errors import (
    ConcurrencyBug,
    CrashBug,
    EngineInvariantError,
    MisuseError,
    MisuseKind,
    RuntimeUsageError,
)
from ..runtime.objects import (
    Atomic,
    Barrier,
    CondVar,
    Mutex,
    NamingScope,
    RWLock,
    Semaphore,
    SharedArray,
)
from ..runtime.ops import DATA_KINDS, Op, OpKind, noop_op, reacquire_op

VisibleFilter = Callable[[Op], bool]


def sync_only_filter(op: Op) -> bool:
    """Module-level "only synchronisation ops are visible" predicate.

    Used when a benchmark has no racy sites: no data access is a scheduling
    point.  Being a plain module-level function (not a closure) keeps it
    picklable, so work cells carrying it can cross process boundaries.
    """
    return False


def coerce_spurious_budget(value) -> int:
    """Normalize a spurious-wakeups budget to ``int``.

    Historically the explorers declared ``spurious_wakeups: bool = False``
    while the executor took an int budget ("``True`` means one").  The
    parameter is an ``int`` end to end now; passing a ``bool`` still works
    (``True`` → 1, ``False`` → 0) but is deprecated.
    """
    if type(value) is bool:
        warnings.warn(
            "spurious_wakeups is an int budget; passing a bool is "
            "deprecated (True means a budget of 1)",
            DeprecationWarning,
            stacklevel=3,
        )
        return int(value)
    return int(value)


#: Op kinds whose enabledness depends on shared state (everything else is
#: always enabled — checked first on the hot path).
_CONDITIONAL_KINDS = frozenset(
    {
        OpKind.LOCK,
        OpKind.REACQUIRE,
        OpKind.JOIN,
        OpKind.SEM_WAIT,
        OpKind.AWAIT,
        OpKind.RW_RDLOCK,
        OpKind.RW_WRLOCK,
    }
)

#: Bool tables indexed by the ``OpKind`` IntEnum value.  ``enabled()`` tests
#: every runnable thread's pending op at every scheduling point and
#: ``_advance`` classifies every yielded op, so these membership tests are
#: the engine's hottest branches; a tuple index beats a frozenset probe.
_CONDITIONAL_FLAGS = tuple(
    OpKind(i) in _CONDITIONAL_KINDS for i in range(max(OpKind) + 1)
)
_DATA_FLAGS = tuple(OpKind(i) in DATA_KINDS for i in range(max(OpKind) + 1))


class ThreadStatus(enum.IntEnum):
    RUNNABLE = 0   # poised at a pending visible op
    WAITING = 1    # parked (cond wait / barrier) until woken
    FINISHED = 2


class ThreadState:
    """Book-keeping for one thread within one execution."""

    __slots__ = ("tid", "handle", "gen", "ctx", "status", "pending", "wait_obj", "wait_data")

    def __init__(self, tid: int, gen: Generator[Op, Any, Any]) -> None:
        self.tid = tid
        self.handle = ThreadHandle(tid)
        self.gen = gen
        self.ctx = ThreadContext(tid)
        self.status = ThreadStatus.RUNNABLE
        #: The visible op this thread is poised at (valid when RUNNABLE;
        #: set by the kernel's spawn-time advance).
        self.pending: Optional[Op] = None
        #: The object this thread is parked on (valid when WAITING).
        self.wait_obj: Any = None
        #: Extra wake data (the mutex to reacquire after cond_wait).
        self.wait_data: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadState(tid={self.tid}, {self.status.name})"


class Kernel:
    """All mutable state of one controlled execution."""

    __slots__ = (
        "threads",
        "shared",
        "bug",
        "visible_filter",
        "observers",
        "last_tid",
        "steps",
        "spurious_wakeups",
        "naming",
        "store_version",
        "_finished_count",
        "_runnable",
    )

    def __init__(
        self,
        shared: Any,
        visible_filter: Optional[VisibleFilter],
        observers: Tuple[Any, ...],
        spurious_wakeups: int = 0,
        naming: Optional[NamingScope] = None,
    ) -> None:
        self.threads: List[ThreadState] = []
        self.shared = shared
        self.bug: Optional[ConcurrencyBug] = None
        #: ``None`` means "everything visible" (race-detection phase).
        self.visible_filter = visible_filter
        self.observers = observers
        #: This execution's auto-naming counter.  Owned per kernel so
        #: concurrent executions in one process cannot interleave resets.
        self.naming = naming if naming is not None else NamingScope()
        #: Remaining spurious-wakeup budget.  When positive, a thread
        #: parked in ``cond_wait`` may be scheduled at any point — it wakes
        #: without a signal (POSIX allows this; CHESS's
        #: ``/spuriouswakeups`` tests the same thing).  Exposes
        #: missing-``while``-recheck bugs.  The budget is per execution:
        #: an unbounded allowance would make a correct wait/recheck loop's
        #: schedule tree infinite (wake, recheck, re-wait, wake, ...).
        #: ``True`` means a budget of one.
        self.spurious_wakeups = int(spurious_wakeups)
        #: id of the thread that executed the previous step (``last(α)``);
        #: starts at 0, the main thread, matching the deterministic
        #: round-robin scheduler's starting point.
        self.last_tid = 0
        self.steps = 0
        #: Monotonic count of shared-state mutations (stores, RMWs, lock
        #: transitions, wakes, thread lifecycle).  Two scheduling points
        #: with equal versions bracket a mutation-free interval — the
        #: progress signal the livelock lasso detector keys on
        #: (:mod:`repro.engine.hardening`).
        self.store_version = 0
        self._finished_count = 0
        #: Sorted tids with status ``RUNNABLE``, maintained incrementally on
        #: spawn / park / wake / finish so ``enabled()`` never rescans parked
        #: or finished threads.  The per-op precondition (mutex free, join
        #: target finished, ...) is still checked fresh on every call — only
        #: the block/unblock *status* transitions are dirty-tracked.
        self._runnable: List[int] = []

    # -- thread lifecycle ---------------------------------------------------

    def spawn(self, body: Callable[..., Any], args: Tuple[Any, ...]) -> ThreadHandle:
        """Create a thread and poise it at its first visible operation.

        The child's invisible prefix (if any) executes here, i.e. within
        the spawner's step — matching the paper's model where a thread's
        first *step* is its first visible operation.
        """
        tid = len(self.threads)
        ts = ThreadState(tid, None)  # type: ignore[arg-type]
        gen = body(ts.ctx, *args)
        if not hasattr(gen, "send"):
            raise MisuseError(
                MisuseKind.NON_GENERATOR_BODY,
                f"thread body {getattr(body, '__name__', body)!r} must be a "
                "generator function (did you forget to yield?)",
            )
        ts.gen = gen
        self.store_version += 1
        self.threads.append(ts)
        self._runnable.append(tid)  # tids are monotonic: stays sorted
        self._advance(ts, None)
        return ts.handle

    @property
    def num_created(self) -> int:
        return len(self.threads)

    @property
    def all_finished(self) -> bool:
        return self._finished_count == len(self.threads)

    # -- enabledness ---------------------------------------------------------

    def _op_enabled(
        self,
        op: Op,
        # Positional defaults bind the hot globals as locals; never pass.
        _FLAGS=_CONDITIONAL_FLAGS,
        _LOCK=OpKind.LOCK,
        _REACQUIRE=OpKind.REACQUIRE,
        _JOIN=OpKind.JOIN,
        _SEM_WAIT=OpKind.SEM_WAIT,
        _AWAIT=OpKind.AWAIT,
        _RW_RDLOCK=OpKind.RW_RDLOCK,
        _RW_WRLOCK=OpKind.RW_WRLOCK,
    ) -> bool:
        k = op.kind
        if not _FLAGS[k]:  # fast path: most ops never block
            return True
        if k is _LOCK or k is _REACQUIRE:
            return op.target.owner is None
        if k is _JOIN:
            return op.target.finished
        if k is _SEM_WAIT:
            return op.target.count > 0
        if k is _AWAIT:
            return bool(op.arg(op.target.value))
        if k is _RW_RDLOCK:
            return op.target.writer is None
        if k is _RW_WRLOCK:
            return op.target.writer is None and not op.target.readers
        return True

    def enabled(self) -> Tuple[int, ...]:
        """Sorted tuple of tids whose pending op can execute now."""
        if self.spurious_wakeups > 0:
            # Parked condvar waiters join the enabled set, interleaved by
            # tid with the runnable threads: full scan (rare mode).
            out = []
            for ts in self.threads:
                if (
                    ts.status is ThreadStatus.RUNNABLE
                    and ts.pending is not None
                    and self._op_enabled(ts.pending)
                ):
                    out.append(ts.tid)
                elif ts.status is ThreadStatus.WAITING and isinstance(
                    ts.wait_obj, CondVar
                ):
                    # Scheduling a condvar waiter wakes it spuriously.
                    out.append(ts.tid)
            return tuple(out)
        out = []
        threads = self.threads
        flags = _CONDITIONAL_FLAGS
        op_enabled = self._op_enabled
        for tid in self._runnable:
            op = threads[tid].pending
            # Inlined always-enabled fast path; only conditional kinds pay
            # the ``_op_enabled`` call (semantics identical).
            if op is not None and (not flags[op.kind] or op_enabled(op)):
                out.append(tid)
        return tuple(out)

    def tid_enabled(
        self, tid: int, _RUNNABLE=ThreadStatus.RUNNABLE, _FLAGS=_CONDITIONAL_FLAGS
    ) -> bool:
        """Whether one specific thread could execute now — the replay fast
        path's cheap membership test (``tid in self.enabled()`` without
        materialising the whole set).  The trailing defaults are
        local-bound globals; never pass them."""
        ts = self.threads[tid]
        if ts.status is _RUNNABLE:
            op = ts.pending
            return op is not None and (
                not _FLAGS[op.kind] or self._op_enabled(op)
            )
        return (
            self.spurious_wakeups > 0
            and ts.status is ThreadStatus.WAITING
            and isinstance(ts.wait_obj, CondVar)
        )

    def live_unfinished(self) -> List[ThreadState]:
        return [t for t in self.threads if t.status is not ThreadStatus.FINISHED]

    def blocked_description(self) -> str:
        parts = []
        for t in self.live_unfinished():
            if t.status is ThreadStatus.WAITING:
                parts.append(f"T{t.tid} parked on {t.wait_obj!r}")
            elif t.pending is not None:
                parts.append(
                    f"T{t.tid} blocked at {t.pending.kind.name} "
                    f"on {t.pending.target!r} ({t.pending.site})"
                )
        return "; ".join(parts)

    # -- stepping -------------------------------------------------------------

    def step(self, tid: int, _RUNNABLE=ThreadStatus.RUNNABLE) -> None:
        """Execute one step of thread ``tid`` (must be enabled).

        Executes the pending visible op, then advances the generator through
        invisible ops to the next visible boundary.  Sets ``self.bug`` if
        the step surfaces a bug.  (``_RUNNABLE`` is a local-bound global;
        never pass it.)
        """
        ts = self.threads[tid]
        if (
            self.spurious_wakeups > 0
            and ts.status is ThreadStatus.WAITING
            and isinstance(ts.wait_obj, CondVar)
        ):
            # Spurious wakeup: unpark without a signal.  This step either
            # reacquires the mutex (if free) or leaves the thread poised
            # at the reacquire, exactly like a signalled wake-up.
            self.spurious_wakeups -= 1
            self.store_version += 1
            cond: CondVar = ts.wait_obj
            cond.waiters.remove(tid)
            ts.status = ThreadStatus.RUNNABLE
            insort(self._runnable, tid)
            ts.pending = reacquire_op(ts.wait_data, site=f"<spurious:{cond.name}>")
            ts.wait_obj = None
            if ts.pending.target.owner is not None:
                # Mutex busy: the wake itself is the step (observers see a
                # no-op, not an acquire); the thread now blocks at the
                # reacquire like any other lock waiter.
                if self.observers:
                    self._notify_step(
                        tid, noop_op(site=f"<spurious:{cond.name}>"), None,
                        visible=True,
                    )
                self.last_tid = tid
                self.steps += 1
                return
        op = ts.pending
        assert op is not None and ts.status is _RUNNABLE
        ts.pending = None
        try:
            result, parked = self._execute(ts, op)
        except ConcurrencyBug as bug:
            self.bug = bug
            self.last_tid = tid
            self.steps += 1
            return
        if self.observers:
            self._notify_step(tid, op, result, visible=True)
        self.last_tid = tid
        self.steps += 1
        if not parked:
            self._advance(ts, result)

    def _advance(
        self,
        ts: ThreadState,
        send_value: Any,
        # Positional defaults bind the hot globals as locals; never pass.
        _OP=Op,
        _FLAGS=_DATA_FLAGS,
        _JOIN=OpKind.JOIN,
        _LOCK=OpKind.LOCK,
    ) -> None:
        """Drive ``ts``'s generator to its next visible op (or to the end).

        Hot loop: runs once per step plus once per invisible data access,
        so the visibility test (:meth:`_is_visible`) is inlined via
        ``_DATA_FLAGS`` and :meth:`_validate_poised` — which only acts on
        JOIN and LOCK — is gated here on those two kinds.
        """
        gen_send = ts.gen.send
        vf = self.visible_filter
        observers = self.observers
        while True:
            try:
                op = gen_send(send_value)
            except StopIteration as stop:
                self._finish_thread(ts, stop.value)
                return
            except ConcurrencyBug as bug:
                self.bug = bug
                return
            except RuntimeUsageError:
                # Program-API misuse: propagates to the executor, which
                # contains it as a non-bug ABORT outcome (never re-raised
                # out of the exploration loop).
                raise
            except Exception as exc:  # a crash in the program under test
                self.bug = CrashBug(
                    f"T{ts.tid} crashed: {type(exc).__name__}: {exc}", original=exc
                )
                return
            if type(op) is not _OP:
                raise MisuseError(
                    MisuseKind.NON_OP_YIELD,
                    f"T{ts.tid} yielded {op!r}; thread bodies must yield Op "
                    "records built via the ThreadContext API",
                )
            k = op.kind
            if not _FLAGS[k] or vf is None or vf(op):
                if k is _JOIN or k is _LOCK:
                    self._validate_poised(ts, op)
                ts.pending = op
                return
            # Invisible data access: service it within the current step.
            try:
                send_value = self._data_access(ts.tid, op)
            except ConcurrencyBug as bug:
                self.bug = bug
                return
            if observers:
                self._notify_step(ts.tid, op, send_value, visible=False)

    def _validate_poised(self, ts: ThreadState, op: Op) -> None:
        """Reject ops that can provably never execute (eager misuse checks).

        Runs once per visible-op poise; only JOIN and LOCK carry checks, so
        the hot path pays two identity comparisons.  A JOIN on the thread's
        own handle or on a handle from another execution, and a LOCK on a
        non-reentrant mutex the thread already owns, would otherwise park
        the thread forever and masquerade as a deadlock.
        """
        k = op.kind
        if k is OpKind.JOIN:
            handle = op.target
            if not isinstance(handle, ThreadHandle):
                raise MisuseError(
                    MisuseKind.STALE_HANDLE,
                    f"T{ts.tid} joins {handle!r}, which is not a thread "
                    f"handle, at {op.site}",
                    site=op.site,
                )
            if handle.tid == ts.tid:
                raise MisuseError(
                    MisuseKind.JOIN_SELF,
                    f"T{ts.tid} joins its own handle at {op.site}",
                    site=op.site,
                )
            if (
                handle.tid >= len(self.threads)
                or self.threads[handle.tid].handle is not handle
            ):
                raise MisuseError(
                    MisuseKind.STALE_HANDLE,
                    f"T{ts.tid} joins a handle from another execution "
                    f"(stale T{handle.tid}) at {op.site}",
                    site=op.site,
                )
        elif k is OpKind.LOCK and op.target.owner == ts.tid:
            raise MisuseError(
                MisuseKind.DOUBLE_ACQUIRE,
                f"T{ts.tid} re-locks non-reentrant mutex {op.target.name} "
                f"it already owns at {op.site}",
                site=op.site,
            )

    def _finish_thread(self, ts: ThreadState, value: Any) -> None:
        ts.status = ThreadStatus.FINISHED
        ts.handle.finished = True
        ts.handle.result = value
        self.store_version += 1
        self._finished_count += 1
        self._runnable.remove(ts.tid)

    def _is_visible(self, op: Op) -> bool:
        if op.kind not in DATA_KINDS:
            return True
        if self.visible_filter is None:
            return True
        return self.visible_filter(op)

    # -- op execution ----------------------------------------------------------

    def _execute(
        self,
        ts: ThreadState,
        op: Op,
        # Enum members bound as positional defaults (tuple-backed, so
        # they are filled with a cheap copy per call): the dispatch chain
        # below runs once per visible step and walks several ``k is X``
        # tests; locals are much cheaper than global + enum-attribute
        # loads.  Never pass these.
        _LOAD=OpKind.LOAD,
        _STORE=OpKind.STORE,
        _THREAD_START=OpKind.THREAD_START,
        _NOOP=OpKind.NOOP,
        _YIELD=OpKind.YIELD,
        _LOCK=OpKind.LOCK,
        _REACQUIRE=OpKind.REACQUIRE,
        _UNLOCK=OpKind.UNLOCK,
        _TRYLOCK=OpKind.TRYLOCK,
        _RMW=OpKind.RMW,
        _CAS=OpKind.CAS,
        _AWAIT=OpKind.AWAIT,
        _SPAWN=OpKind.SPAWN,
        _SPAWN_MANY=OpKind.SPAWN_MANY,
        _JOIN=OpKind.JOIN,
        _COND_WAIT=OpKind.COND_WAIT,
        _COND_SIGNAL=OpKind.COND_SIGNAL,
        _COND_BROADCAST=OpKind.COND_BROADCAST,
        _BARRIER_WAIT=OpKind.BARRIER_WAIT,
        _SEM_WAIT=OpKind.SEM_WAIT,
        _SEM_POST=OpKind.SEM_POST,
        _RW_RDLOCK=OpKind.RW_RDLOCK,
        _RW_WRLOCK=OpKind.RW_WRLOCK,
        _RW_UNLOCK=OpKind.RW_UNLOCK,
    ) -> Tuple[Any, bool]:
        """Execute a visible op.  Returns ``(result, parked)``."""
        k = op.kind
        tid = ts.tid
        if k is _LOAD or k is _STORE:
            return self._data_access(tid, op), False
        if k is _THREAD_START or k is _NOOP or k is _YIELD:
            return None, False
        if k is _LOCK or k is _REACQUIRE:
            m: Mutex = op.target
            assert m.owner is None
            m.owner = tid
            self.store_version += 1
            return None, False
        if k is _UNLOCK:
            m = op.target
            if m.owner != tid:
                raise MisuseError(
                    MisuseKind.UNLOCK_NOT_OWNER,
                    f"T{tid} unlocked {m.name} it does not own "
                    f"(owner={m.owner}) at {op.site}",
                    site=op.site,
                )
            m.owner = None
            self.store_version += 1
            return None, False
        if k is _TRYLOCK:
            m = op.target
            if m.owner is None:
                m.owner = tid
                self.store_version += 1
                return True, False
            return False, False
        if k is _SPAWN:
            return self.spawn(op.arg, (self.shared,) + tuple(op.arg2)), False
        if k is _SPAWN_MANY:
            handles = []
            for body, extra in op.arg:
                handles.append(self.spawn(body, (self.shared,) + tuple(extra)))
                if self.bug is not None:
                    break
            return tuple(handles), False
        if k is _JOIN:
            handle: ThreadHandle = op.target
            assert handle.finished
            handle.joined = True
            return handle.result, False
        if k is _COND_WAIT:
            cond: CondVar = op.target
            m = op.arg
            if m.owner != tid:
                raise MisuseError(
                    MisuseKind.WAIT_WITHOUT_LOCK,
                    f"T{tid} cond_wait on {cond.name} without holding "
                    f"{m.name} at {op.site}",
                    site=op.site,
                )
            m.owner = None
            cond.waiters.append(tid)
            ts.status = ThreadStatus.WAITING
            ts.wait_obj = cond
            ts.wait_data = m
            self._runnable.remove(tid)
            self.store_version += 1
            return None, True
        if k is _COND_SIGNAL:
            self._wake_waiters(ts.tid, op.target, limit=1)
            return None, False
        if k is _COND_BROADCAST:
            self._wake_waiters(ts.tid, op.target, limit=None)
            return None, False
        if k is _BARRIER_WAIT:
            barrier: Barrier = op.target
            barrier.waiting.append(tid)
            if len(barrier.waiting) >= barrier.parties:
                for wtid in barrier.waiting:
                    if wtid == tid:
                        continue
                    w = self.threads[wtid]
                    w.status = ThreadStatus.RUNNABLE
                    w.pending = noop_op(site=f"<barrier:{barrier.name}>")
                    w.wait_obj = None
                    insort(self._runnable, wtid)
                    self._notify_wake(tid, wtid, barrier)
                barrier.waiting = []
                self.store_version += 1
                return True, False  # serial thread (last arriver)
            ts.status = ThreadStatus.WAITING
            ts.wait_obj = barrier
            self._runnable.remove(tid)
            self.store_version += 1
            return False, True
        if k is _SEM_WAIT:
            sem: Semaphore = op.target
            assert sem.count > 0
            sem.count -= 1
            self.store_version += 1
            return None, False
        if k is _SEM_POST:
            op.target.count += 1
            self.store_version += 1
            return None, False
        if k is _RW_RDLOCK:
            rw: RWLock = op.target
            assert rw.writer is None
            rw.readers.append(tid)
            self.store_version += 1
            return None, False
        if k is _RW_WRLOCK:
            rw = op.target
            assert rw.writer is None and not rw.readers
            rw.writer = tid
            self.store_version += 1
            return None, False
        if k is _RW_UNLOCK:
            rw = op.target
            if rw.writer == tid:
                rw.writer = None
            elif tid in rw.readers:
                rw.readers.remove(tid)
            else:
                raise MisuseError(
                    MisuseKind.RW_UNLOCK_NOT_HELD,
                    f"T{tid} rw_unlock on {rw.name} it does not hold at {op.site}",
                    site=op.site,
                )
            self.store_version += 1
            return None, False
        if k is _RMW:
            target = op.target
            if isinstance(target, SharedArray):
                # Array variant: arg is the cell index, arg2 the function.
                old = target.read(op.arg)
                if op.arg2 is not None:
                    target.write(op.arg, op.arg2(old))
                    self.store_version += 1
                return old, False
            cell: Atomic = target
            old = cell.value
            if op.arg is not None:
                cell.value = op.arg(old)
                self.store_version += 1
            return old, False
        if k is _CAS:
            target = op.target
            if isinstance(target, SharedArray):
                # Array variant: arg is the cell index, arg2 (expected, new).
                expected, new = op.arg2
                old = target.read(op.arg)
                if old == expected:
                    target.write(op.arg, new)
                    self.store_version += 1
                    return (True, old), False
                return (False, old), False
            cell = target
            old = cell.value
            if old == op.arg:
                cell.value = op.arg2
                self.store_version += 1
                return (True, old), False
            return (False, old), False
        if k is _AWAIT:
            value = op.target.value
            assert op.arg(value)
            return value, False
        raise EngineInvariantError(f"unhandled op kind {k!r}")  # pragma: no cover

    def _data_access(
        self, tid: int, op: Op, _LOAD=OpKind.LOAD, _ARRAY=SharedArray
    ) -> Any:
        """Service a plain LOAD/STORE (visible or invisible).

        The trailing defaults bind the global lookups as locals; this
        runs once per data access, visible or not.  Never pass them.
        """
        target = op.target
        if op.kind is _LOAD:
            if isinstance(target, _ARRAY):
                return target.read(op.arg)
            return target.value
        # STORE
        if isinstance(target, _ARRAY):
            target.write(op.arg, op.arg2)
        else:
            target.value = op.arg
        self.store_version += 1
        return None

    def _wake_waiters(self, waker: int, cond: CondVar, limit: Optional[int]) -> None:
        n = len(cond.waiters) if limit is None else min(limit, len(cond.waiters))
        if n > 0:
            self.store_version += 1
        for _ in range(n):
            wtid = cond.waiters.pop(0)
            w = self.threads[wtid]
            w.status = ThreadStatus.RUNNABLE
            w.pending = reacquire_op(w.wait_data, site=f"<reacquire:{cond.name}>")
            w.wait_obj = None
            insort(self._runnable, wtid)
            self._notify_wake(waker, wtid, cond)

    # -- paranoid self-checks ----------------------------------------------------

    def check_invariants(self) -> None:
        """Validate the kernel's internal bookkeeping (self-check mode).

        Cross-checks the incrementally-maintained ``_runnable`` list and
        ``_finished_count`` against a fresh scan of the thread table.  Any
        mismatch is a harness bug, never a program bug — raised as
        :class:`~repro.runtime.errors.EngineInvariantError`, which is
        deliberately *not* contained by the executor.
        """
        expected = [
            ts.tid for ts in self.threads if ts.status is ThreadStatus.RUNNABLE
        ]
        if self._runnable != expected:
            raise EngineInvariantError(
                f"_runnable {self._runnable} != RUNNABLE scan {expected}"
            )
        for tid in self._runnable:
            if self.threads[tid].pending is None:
                raise EngineInvariantError(
                    f"RUNNABLE T{tid} has no pending op"
                )
        finished = sum(
            1 for ts in self.threads if ts.status is ThreadStatus.FINISHED
        )
        if self._finished_count != finished:
            raise EngineInvariantError(
                f"_finished_count {self._finished_count} != FINISHED scan {finished}"
            )
        for ts in self.threads:
            if ts.status is ThreadStatus.WAITING and ts.wait_obj is None:
                raise EngineInvariantError(f"WAITING T{ts.tid} has no wait_obj")

    # -- observer plumbing -------------------------------------------------------

    def _notify_step(self, tid: int, op: Op, result: Any, visible: bool) -> None:
        for obs in self.observers:
            obs.on_step(tid, op, result, visible)

    def _notify_wake(self, waker: int, woken: int, obj: Any) -> None:
        for obs in self.observers:
            obs.on_wake(waker, woken, obj)
