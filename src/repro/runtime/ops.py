"""Visible-operation records.

A *visible operation* (Godefroid's terminology, adopted by the paper in
section 2) is an operation through which threads can interact: a
synchronisation operation or a shared-memory access.  Thread bodies are
generator functions that ``yield`` operation records built by
:class:`repro.runtime.context.ThreadContext`; the execution engine services
each record and sends the result back into the generator.

Each record carries a ``site`` string identifying the static program
location that issued it.  Sites are the unit of data-race reporting: the
race-detection phase produces a set of racy *sites*, and only loads/stores
whose site is in that set are treated as scheduling points during SCT
(mirroring how the paper promotes racy instructions, stored as binary
offsets, to visible operations).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Tuple


class OpKind(enum.IntEnum):
    """Discriminator for operation records.

    ``IntEnum`` so that engine dispatch can index a tuple of handlers.
    """

    THREAD_START = 0   # reserved (threads are poised at their first real op)
    SPAWN = 1
    SPAWN_MANY = 23    # create several threads in one visible action
    JOIN = 2
    LOCK = 3
    UNLOCK = 4
    TRYLOCK = 5
    COND_WAIT = 6
    COND_SIGNAL = 7
    COND_BROADCAST = 8
    BARRIER_WAIT = 9
    SEM_WAIT = 10
    SEM_POST = 11
    RW_RDLOCK = 12
    RW_WRLOCK = 13
    RW_UNLOCK = 14
    LOAD = 15
    STORE = 16
    RMW = 17           # atomic read-modify-write
    CAS = 18           # atomic compare-and-swap
    AWAIT = 19         # block until a predicate over a shared var holds
    YIELD = 20         # pure scheduling point (sched_yield)
    NOOP = 21          # engine-generated continuation (barrier wake, ...)
    REACQUIRE = 22     # engine-generated: reacquire mutex after cond_wait


#: Kinds that are *synchronisation* operations: always visible, and always
#: scheduling points regardless of the race filter.
SYNC_KINDS = frozenset(
    {
        OpKind.THREAD_START,
        OpKind.SPAWN,
        OpKind.SPAWN_MANY,
        OpKind.JOIN,
        OpKind.LOCK,
        OpKind.UNLOCK,
        OpKind.TRYLOCK,
        OpKind.COND_WAIT,
        OpKind.COND_SIGNAL,
        OpKind.COND_BROADCAST,
        OpKind.BARRIER_WAIT,
        OpKind.SEM_WAIT,
        OpKind.SEM_POST,
        OpKind.RW_RDLOCK,
        OpKind.RW_WRLOCK,
        OpKind.RW_UNLOCK,
        OpKind.RMW,
        OpKind.CAS,
        OpKind.AWAIT,
        OpKind.YIELD,
        OpKind.NOOP,
        OpKind.REACQUIRE,
    }
)

#: Kinds that are plain data accesses: visible only when their site is racy
#: (or when the engine is configured with ``all_visible=True``).
DATA_KINDS = frozenset({OpKind.LOAD, OpKind.STORE})

#: Kinds that may *block* the issuing thread (the op itself is only enabled
#: when its precondition holds, or executing it parks the thread).
BLOCKING_KINDS = frozenset(
    {
        OpKind.LOCK,
        OpKind.JOIN,
        OpKind.COND_WAIT,
        OpKind.BARRIER_WAIT,
        OpKind.SEM_WAIT,
        OpKind.RW_RDLOCK,
        OpKind.RW_WRLOCK,
        OpKind.AWAIT,
        OpKind.REACQUIRE,
    }
)


class Op:
    """One operation request yielded by a thread body.

    Deliberately a tiny ``__slots__`` record: the engine allocates one per
    visible operation on the hot path.
    """

    __slots__ = ("kind", "target", "arg", "arg2", "site")

    def __init__(
        self,
        kind: OpKind,
        target: Any = None,
        arg: Any = None,
        arg2: Any = None,
        site: str = "?",
    ) -> None:
        self.kind = kind
        #: The object the operation acts on (Mutex, SharedVar, thread handle...).
        self.target = target
        #: Primary argument (value to store, thread body to spawn, ...).
        self.arg = arg
        #: Secondary argument (spawn args tuple, CAS expected value, ...).
        self.arg2 = arg2
        #: Static program location that issued the op.
        self.site = site

    @property
    def is_sync(self) -> bool:
        return self.kind not in DATA_KINDS

    @property
    def is_write(self) -> bool:
        """Whether the op writes shared data (for race detection)."""
        return self.kind in (OpKind.STORE, OpKind.RMW, OpKind.CAS)

    @property
    def is_data_access(self) -> bool:
        return self.kind in DATA_KINDS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Op({self.kind.name}, target={self.target!r}, "
            f"arg={self.arg!r}, site={self.site!r})"
        )


# Convenience constructors used by engine internals ------------------------

def thread_start_op() -> Op:
    return Op(OpKind.THREAD_START, site="<thread-start>")


def noop_op(site: str = "<noop>") -> Op:
    return Op(OpKind.NOOP, site=site)


def reacquire_op(mutex: Any, site: str = "<reacquire>") -> Op:
    return Op(OpKind.REACQUIRE, target=mutex, site=site)


PredT = Callable[[Any], bool]
SiteT = str
SpawnArgsT = Tuple[Any, ...]
OptStr = Optional[str]
