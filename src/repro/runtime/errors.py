"""Bug and error types raised/reported by the runtime and engine.

The paper classifies bugs as *deadlocks, crashes or assertion failures
(including those that identify incorrect output)* (section 5).  We mirror
that taxonomy, plus the out-of-bounds memory class discussed in section 4.2
(``MemorySafetyBug``), which their modified Maple detects for accesses to
synchronisation objects and which they check via manually-added assertions
elsewhere.

Orthogonal to the bug taxonomy is the *misuse* taxonomy
(:class:`MisuseKind` / :class:`MisuseError`): ways a program under test can
break the runtime API's contract — unlocking a mutex it does not own,
joining its own handle, yielding a non-``Op`` value, and so on.  Misuses
raised during a controlled execution are contained by the engine as
``Outcome.ABORT`` (a non-bug abandoned outcome; see DESIGN.md section 12)
so exploration of the remaining schedule space continues.  Harness-side
invariant violations are :class:`EngineInvariantError` and stay hard
errors: an engine that is wrong must fail loudly, never classify.
"""

from __future__ import annotations

import enum
import os
import traceback as _traceback
from typing import Optional


class BugType(enum.Enum):
    ASSERTION = "assertion"      # assertion failure / incorrect output check
    DEADLOCK = "deadlock"        # no enabled threads, some unfinished
    CRASH = "crash"              # uncaught exception in a thread body
    MEMORY = "memory"            # detected out-of-bounds access
    LIVELOCK = "livelock"        # step budget exhausted (reported, not a bug
                                 # per the paper's counting; kept distinct)


def normalize_traceback(exc: BaseException) -> str:
    """A version-stable rendering of ``exc``'s traceback.

    Journal records and bug reports must be diffable across Python
    versions, so this deliberately drops everything CPython varies:
    absolute paths (basenames only), line numbers (3.11 changed how
    multi-line statements are attributed), source echo lines, and the
    3.11+ ``^^^`` anchors.  What remains — the frame chain as
    ``file:function`` plus the final ``Type: message`` line — identifies
    the failure path without any of the drift.

    Frames inside the engine's own driver (``engine/state.py``,
    ``engine/executor.py``) are elided: they are the controlled-execution
    plumbing present in every program traceback, not part of the failure.
    """
    lines = []
    for frame in _traceback.extract_tb(exc.__traceback__):
        base = os.path.basename(frame.filename)
        if base in ("state.py", "executor.py") and (
            os.sep + "engine" + os.sep in frame.filename
            or "/engine/" in frame.filename
        ):
            continue
        lines.append(f"  at {base}:{frame.name}")
    lines.append(f"{type(exc).__name__}: {exc}")
    return "\n".join(lines)


class ConcurrencyBug(Exception):
    """Base class for bugs surfaced by controlled execution."""

    bug_type: BugType = BugType.CRASH

    def __init__(self, message: str = "", site: Optional[str] = None) -> None:
        super().__init__(message)
        self.message = message
        self.site = site


class AssertionFailureBug(ConcurrencyBug):
    """Raised by ``ctx.check``/output checkers; a terminal buggy state."""

    bug_type = BugType.ASSERTION


class DeadlockBug(ConcurrencyBug):
    """Constructed by the engine when the enabled set empties early."""

    bug_type = BugType.DEADLOCK


class CrashBug(ConcurrencyBug):
    """Wraps an uncaught exception escaping a thread body.

    ``traceback`` carries the normalized (version-stable) rendering of the
    original exception's traceback — see :func:`normalize_traceback` — so
    journal records and bug reports stay diffable across Python versions.
    """

    bug_type = BugType.CRASH

    def __init__(
        self,
        message: str = "",
        site: Optional[str] = None,
        original: Optional[BaseException] = None,
        traceback: Optional[str] = None,
    ) -> None:
        super().__init__(message, site)
        self.original = original
        if traceback is None and original is not None:
            traceback = normalize_traceback(original)
        self.traceback = traceback


class MemorySafetyBug(ConcurrencyBug):
    """Out-of-bounds access caught by the guard-zone detector."""

    bug_type = BugType.MEMORY


class RuntimeUsageError(Exception):
    """Misuse of the runtime API (not a concurrency bug).

    Raised eagerly at the point of misuse — yielding a non-``Op`` value,
    joining an unknown handle, constructing a negative-count semaphore.
    When the misuse happens *inside* a controlled execution the engine
    contains it: the execution ends with ``Outcome.ABORT`` (carrying a
    :class:`MisuseReport`) and exploration continues with the next
    schedule.  Outside an execution (building ops by hand, test setup) it
    propagates like any exception.
    """


class MisuseKind(enum.Enum):
    """Typed classification of program-under-test API misuse.

    Carried by :class:`MisuseError` and surfaced on
    ``ExecutionResult.misuse`` when the engine converts an in-execution
    misuse into ``Outcome.ABORT``.
    """

    NON_OP_YIELD = "non-op-yield"            # body yielded a non-Op value
    NON_GENERATOR_BODY = "non-generator-body"  # spawned body never yields
    UNLOCK_NOT_OWNER = "unlock-not-owner"    # unlock of a mutex not held
    DOUBLE_ACQUIRE = "double-acquire"        # re-lock of an owned non-reentrant mutex
    WAIT_WITHOUT_LOCK = "wait-without-lock"  # cond_wait without the mutex
    RW_UNLOCK_NOT_HELD = "rw-unlock-not-held"  # rw_unlock without rd/wr hold
    JOIN_SELF = "join-self"                  # thread joins its own handle
    STALE_HANDLE = "stale-handle"            # join target from another execution
    NEGATIVE_SEMAPHORE = "negative-semaphore"  # Semaphore(initial < 0)
    BARRIER_MISMATCH = "barrier-mismatch"    # Barrier party-count misuse
    RUNTIME_API = "runtime-api"              # other RuntimeUsageError


class MisuseError(RuntimeUsageError):
    """A :class:`RuntimeUsageError` with a typed :class:`MisuseKind`.

    The engine's detection points raise this subclass so containment can
    record *which* contract was broken, not just that one was.
    """

    def __init__(
        self, kind: MisuseKind, message: str, site: Optional[str] = None
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.site = site


class MisuseReport:
    """JSON-safe record of one contained misuse (``Outcome.ABORT``)."""

    __slots__ = ("kind", "message", "traceback")

    def __init__(self, kind: MisuseKind, message: str, traceback: str) -> None:
        self.kind = kind
        self.message = message
        #: Normalized, version-stable traceback (:func:`normalize_traceback`).
        self.traceback = traceback

    @classmethod
    def from_error(cls, exc: RuntimeUsageError) -> "MisuseReport":
        kind = getattr(exc, "kind", MisuseKind.RUNTIME_API)
        return cls(kind, str(exc), normalize_traceback(exc))

    def to_payload(self) -> dict:
        return {
            "kind": self.kind.value,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MisuseReport":
        return cls(
            MisuseKind(payload["kind"]),
            payload["message"],
            payload.get("traceback", ""),
        )

    def __repr__(self) -> str:
        return f"MisuseReport({self.kind.value}: {self.message!r})"


class EngineInvariantError(RuntimeError):
    """A harness-side invariant violation — never contained.

    Raised by the kernel's consistency checks and the executor's paranoid
    self-check mode (``REPRO_ENGINE_CHECK=1``): an illegal scheduler
    choice, a corrupt runnable list, a replay-prefix inconsistency.  These
    indicate a bug in the *engine*, so they crash the exploration loudly
    instead of being classified like program-under-test behaviour.
    """


class StepBudgetExceeded(Exception):
    """Internal signal: the per-execution step budget was exhausted."""
