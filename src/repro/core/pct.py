"""PCT — probabilistic concurrency testing (Burckhardt et al., ASPLOS'10).

The paper discusses PCT in related work (section 7) as the principled
randomized alternative to the naive random scheduler: threads get random
priorities, the scheduler always runs the highest-priority enabled thread,
and ``d-1`` priority *change points* are inserted at depths chosen
uniformly over the execution length.  Bugs of depth ``d`` are then found
with probability at least ``1/(n·k^(d-1))``.

We include PCT as an extension (it is not one of the paper's five
techniques) and use it in the ablation benches comparing principled vs.
naive randomization.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from ..engine.executor import DEFAULT_MAX_STEPS, execute
from ..engine.state import Kernel, VisibleFilter
from ..engine.strategies import RoundRobinStrategy, SchedulerStrategy
from ..runtime.program import Program
from .explorer import BugReport, ExplorationStats, Explorer


class PCTStrategy(SchedulerStrategy):
    """One PCT execution: random priorities + ``d-1`` change points."""

    def __init__(self, rng: random.Random, k_estimate: int, depth: int) -> None:
        self.rng = rng
        self.k_estimate = max(1, k_estimate)
        self.depth = max(1, depth)
        self.priorities: Dict[int, float] = {}
        self.change_points: Set[int] = set()
        self._change_rank = 0

    def on_execution_start(self) -> None:
        self.priorities = {}
        self._change_rank = 0
        n_points = self.depth - 1
        population = range(1, self.k_estimate + 1)
        k = min(n_points, self.k_estimate)
        self.change_points = set(self.rng.sample(population, k)) if k > 0 else set()

    def _priority(self, tid: int) -> float:
        # Initial priorities land in (1, 2); change points demote a thread
        # to i/(d+1) < 1, strictly below every initial priority and ordered
        # by change-point rank, per the PCT construction.
        p = self.priorities.get(tid)
        if p is None:
            p = 1.0 + self.rng.random()
            self.priorities[tid] = p
        return p

    def choose(
        self, step_index: int, enabled: Tuple[int, ...], last_tid: int, kernel: Kernel
    ) -> int:
        best = max(enabled, key=self._priority)
        if step_index in self.change_points:
            self._change_rank += 1
            self.priorities[best] = self._change_rank / (self.depth + 1.0)
        return best


class PCTExplorer(Explorer):
    """Repeated PCT executions; ``depth`` is the target bug depth ``d``."""

    technique = "PCT"

    def __init__(
        self,
        depth: int = 3,
        seed: Optional[int] = None,
        *,
        visible_filter: Optional[VisibleFilter] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        stop_at_first_bug: bool = False,
        budget=None,
        shards: int = 1,
        program_source=None,
    ) -> None:
        self.depth = depth
        self.seed = seed
        self.visible_filter = visible_filter
        self.max_steps = max_steps
        self.stop_at_first_bug = stop_at_first_bug
        self.budget = budget
        #: Worker processes to shard the execution-index range over
        #: (``1`` = classic serial stream); see :mod:`repro.core.sharding`.
        self.shards = max(1, shards)
        #: Picklable program source for pool workers; ``None`` = inline.
        self.program_source = program_source
        #: Per-execution seeds (sharded mode), as in
        #: :class:`repro.core.random_walk.RandomExplorer`.
        self.execution_seeds: Optional[List[int]] = None
        #: Skip calibration and use this ``k``: the sharded parent
        #: calibrates once (deterministic round-robin, so every shard
        #: would compute the identical value) and passes it down.
        self.k_override: Optional[int] = None

    def explore(self, program: Program, limit: int) -> ExplorationStats:
        if self.shards > 1 and self.execution_seeds is None:
            from .sharding import run_sharded_pct

            return run_sharded_pct(self, program, limit)
        stats = ExplorationStats(self.technique, program.name, limit)
        if self.k_override is not None:
            k_estimate = max(1, self.k_override)
        else:
            # Calibrate k (execution length in visible steps) from the
            # deterministic round-robin schedule.
            calibration = execute(
                program,
                RoundRobinStrategy(),
                max_steps=self.max_steps,
                visible_filter=self.visible_filter,
                record_enabled=False,
                budget=self.budget,
            )
            if self._budget_spent(stats, calibration):
                return stats
            k_estimate = max(1, calibration.steps)
        seeds = self.execution_seeds
        strategy = (
            PCTStrategy(random.Random(self.seed), k_estimate, self.depth)
            if seeds is None
            else None
        )
        for j in range(limit):
            if seeds is not None:
                strategy = PCTStrategy(
                    random.Random(seeds[j]), k_estimate, self.depth
                )
            result = execute(
                program,
                strategy,
                max_steps=self.max_steps,
                visible_filter=self.visible_filter,
                record_enabled=False,
                budget=self.budget,
            )
            stats.executions += 1
            stats.observe_run(result)
            if self._budget_spent(stats, result):
                return stats
            if not result.outcome.is_terminal_schedule:
                continue
            stats.schedules += 1
            stats.observe_leaks(result)
            if result.is_buggy:
                stats.buggy_schedules += 1
                if stats.first_bug is None:
                    stats.first_bug = BugReport.from_result(
                        program.name, result, None, stats.schedules
                    )
                    if self.stop_at_first_bug:
                        return stats
        return stats
