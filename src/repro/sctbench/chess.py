"""The CHESS suite — four work-stealing-queue test cases.

The original benchmarks test a Cilk-style work-stealing deque implemented
for the CHESS tool (section 4.1 of the paper; the WSQ benchmark is the
classic evaluation subject of preemption bounding, PLDI'07).  The paper's
authors translated them to pthreads + C++11 atomics and, after fixing an
always-firing heap corruption, kept a much rarer bug.

Our port implements the THE-protocol deque with the same defect family:
the owner's ``take`` fast path and the thief's ``steal`` race on the *last*
element, so a specific interleaving hands the same task to both (duplicate
execution) or loses one (never executed).  A ``done[task]`` tally checked
at the end catches either outcome.

The four variants vary the synchronisation flavour and workload size the
way the suite does — ``WSQ`` is the base case; ``SWSQ`` drives more
steal attempts; ``IWSQ``/``IWSQWS`` are the "interlocked" (lock-free
take) versions, with ``IWSQWS`` adding work-stealing pressure from two
thieves' worth of operations.  Shape targets from Table 3: IPB finds only
``WSQ`` (bound 2); IDB finds all four (bounds 2/1/2/1); DFS finds none;
Rand finds all four.
"""

from __future__ import annotations

from types import SimpleNamespace

from ..runtime import Atomic, Mutex, Program, SharedArray
from .workloads import join_all, spawn_all


def _make_wsq(
    name: str,
    tasks: int,
    steal_attempts: int,
    lockfree_take: bool,
    prefill: int = 0,
    interleaved: bool = False,
    thieves: int = 1,
    tail_ops: int = 0,
) -> Program:
    """Build one work-stealing-queue benchmark.

    tasks:
        number of tasks the owner pushes (and then drains with ``take``).
    steal_attempts:
        how many times the thief calls ``steal``.
    lockfree_take:
        the "interlocked" variants: ``take`` never takes the lock, relying
        (incorrectly) on the head/tail protocol alone.
    prefill:
        tasks pushed before the thief starts (shifts where the racy window
        sits in the schedule).
    """

    size = tasks + prefill + 2

    def setup():
        return SimpleNamespace(
            items=SharedArray(size, -1, "wsq.items"),
            head=Atomic(0, "wsq.head"),
            tail=Atomic(0, "wsq.tail"),
            lock=Mutex("wsq.lock"),
            done=SharedArray(tasks + prefill, 0, "wsq.done"),
            pads=[Atomic(0, f"wsq.pad{i}") for i in range(thieves + 1)],
        )

    def put(ctx, sh, value):
        t = yield ctx.atomic_load(sh.tail, site="wsq:put_rd_tail")
        yield ctx.store_elem(sh.items, t, value, site="wsq:put_store")
        yield ctx.atomic_store(sh.tail, t + 1, site="wsq:put_wr_tail")

    def mark_done(ctx, sh, v, who):
        n = yield ctx.load_elem(sh.done, v, site=f"wsq:{who}_done_rd")
        yield ctx.store_elem(sh.done, v, n + 1, site=f"wsq:{who}_done_wr")

    def take(ctx, sh):
        """Owner-side pop from the tail.  BUG: the fast path returns the
        element without re-validating against a concurrent steal of the
        same (last) slot."""
        t = (yield ctx.atomic_load(sh.tail, site="wsq:take_rd_tail")) - 1
        yield ctx.atomic_store(sh.tail, t, site="wsq:take_wr_tail")
        h = yield ctx.atomic_load(sh.head, site="wsq:take_rd_head")
        if h <= t:
            v = yield ctx.load_elem(sh.items, t, site="wsq:take_read")
            return v
        # Deque looked empty: restore tail.
        yield ctx.atomic_store(sh.tail, t + 1, site="wsq:take_restore")
        if lockfree_take:
            return None
        # Locked slow path: retry once under the lock.
        yield ctx.lock(sh.lock, site="wsq:take_lock")
        h = yield ctx.atomic_load(sh.head, site="wsq:take_rd_head2")
        t2 = (yield ctx.atomic_load(sh.tail, site="wsq:take_rd_tail2")) - 1
        v = None
        if h <= t2:
            yield ctx.atomic_store(sh.tail, t2, site="wsq:take_wr_tail2")
            v = yield ctx.load_elem(sh.items, t2, site="wsq:take_read2")
        yield ctx.unlock(sh.lock, site="wsq:take_unlock")
        return v

    def steal(ctx, sh):
        """Thief-side pop from the head.  The steal lock serialises
        thieves, but the owner's fast-path ``take`` ignores it — so the
        check-then-claim window below races with a concurrent take of the
        *same last element* (the THE-protocol bug this suite exists for:
        both sides pass their emptiness check and return the same task)."""
        yield ctx.lock(sh.lock, site="wsq:steal_lock")
        h = yield ctx.atomic_load(sh.head, site="wsq:steal_rd_head")
        t = yield ctx.atomic_load(sh.tail, site="wsq:steal_rd_tail")
        v = None
        if h < t:
            v = yield ctx.load_elem(sh.items, h, site="wsq:steal_read")
            yield ctx.atomic_store(sh.head, h + 1, site="wsq:steal_wr_head")
        yield ctx.unlock(sh.lock, site="wsq:steal_unlock")
        return v

    def owner(ctx, sh):
        if interleaved:
            # Nearly-empty deque the whole time: put one, take one.  The
            # take/steal collision window recurs on every iteration.
            for i in range(tasks):
                yield from put(ctx, sh, prefill + i)
                v = yield from take(ctx, sh)
                if v is not None:
                    yield from mark_done(ctx, sh, v, "own")
        else:
            # Batch: push everything, then drain.  take and steal only
            # collide where the owner's LIFO front meets the thief's head.
            for i in range(tasks):
                yield from put(ctx, sh, prefill + i)
            for _ in range(tasks):
                v = yield from take(ctx, sh)
                if v is not None:
                    yield from mark_done(ctx, sh, v, "own")
        # Wind-down work (result aggregation in the original harness);
        # buries the racy crossing point deep above the depth-first
        # frontier.
        for _ in range(tail_ops):
            yield ctx.fetch_add(sh.pads[0], 1, site="wsq:own_tail")

    def thief(ctx, sh, idx=1):
        for _ in range(steal_attempts):
            v = yield from steal(ctx, sh)
            if v is not None:
                yield from mark_done(ctx, sh, v, "thf")
        for _ in range(tail_ops):
            yield ctx.fetch_add(sh.pads[idx], 1, site=f"wsq:thf{idx}_tail")

    def main(ctx, sh):
        for i in range(prefill):
            yield from put(ctx, sh, i)
        handles = yield from spawn_all(
            ctx, [owner] + [(thief, i + 1) for i in range(thieves)]
        )
        yield from join_all(ctx, handles)
        # Drain anything left in the deque.
        while True:
            v = yield from take(ctx, sh)
            if v is None:
                break
            yield from mark_done(ctx, sh, v, "drain")
        for i in range(tasks + prefill):
            n = yield ctx.load_elem(sh.done, i, site="wsq:verify")
            ctx.check(n == 1, f"task {i} executed {n} times")

    return Program(
        name, setup, main, expected_bug="assertion (task lost or duplicated)"
    )


def make_wsq() -> Program:
    """chess.WSQ — the base locking deque (IPB bound 2, IDB bound 2)."""
    return _make_wsq(
        "chess.WSQ", tasks=4, steal_attempts=2, lockfree_take=False, tail_ops=6
    )


def make_swsq() -> Program:
    """chess.SWSQ — two stealers over a bigger batch (only IDB/Rand find it)."""
    return _make_wsq(
        "chess.SWSQ",
        tasks=7,
        steal_attempts=3,
        lockfree_take=False,
        thieves=2,
        tail_ops=10,
    )


def make_iwsq() -> Program:
    """chess.IWSQ — lock-free take (found only by IDB at bound 2, and Rand)."""
    return _make_wsq(
        "chess.IWSQ",
        tasks=8,
        steal_attempts=3,
        lockfree_take=True,
        thieves=2,
        tail_ops=10,
    )


def make_iwsqws() -> Program:
    """chess.IWSQWS — lock-free take under constant steal pressure: the
    deque stays nearly empty, so the racy window recurs every iteration
    (random scheduling finds this one quickly, as in the paper)."""
    return _make_wsq(
        "chess.IWSQWS",
        tasks=8,
        steal_attempts=6,
        lockfree_take=True,
        interleaved=True,
        thieves=2,
        tail_ops=7,
    )
