"""Cell-sharding benchmark: serial vs intra-cell sharded exploration.

For each (subject, technique) the script runs the exploration twice —
serial and sharded over ``--shards`` worker processes — asserts the
**stats-identity contract** (DESIGN.md §13), and records wall-clock for
both.  Results land in ``BENCH_parallel.json``.

The identity gate per technique family:

- **DFS / IPB / IDB**: the sharded run must produce ``as_dict()`` stats
  byte-identical to the *classic serial* explorer — sharding is pure work
  distribution over an exact disjoint partition of the search tree.
- **Rand / PCT**: ``shards >= 2`` switches to the index-seeded random
  stream (a different experiment than the classic shared-RNG stream, by
  design — see ``StudyConfig.cell_shards``), so the baseline is the
  *inline* execution of the very same plan: same per-index seeds, same
  shard ranges, run sequentially in-process with no pool.  Pooled and
  inline must merge byte-identically.

Subjects are the five exhaustive ``fixed.*`` twins (bug-free, so the
systematic techniques drain their whole space — the heavy-cell shape that
motivates intra-cell sharding).

Speedup is recorded, not gated: it is a property of the host (see
``summary.cores``).  On a multi-core box expect the sharded wall-clock to
win on the heavy subjects; on a 1-core container the pool only adds
overhead and the serial/sharded ratio documents that honestly.

Run:  PYTHONPATH=src python benchmarks/bench_cell_sharding.py
      [--shards N] [--limit N] [--rand-limit N] [--out BENCH_parallel.json]
      [--subjects a,b,...] [--techniques DFS,IPB,IDB,Rand,PCT]

Exit status is non-zero when any stats-identity check fails — that (not
timing) is what the CI perf-smoke job enforces.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core import DFSExplorer, PCTExplorer, RandomExplorer, make_idb, make_ipb
from repro.sctbench.fixed import (
    make_account_fixed,
    make_counter_fixed,
    make_ctrace_fixed,
    make_reorder_fixed,
    make_stack_fixed,
)

#: The five exhaustive fixed twins (all complete their schedule space).
SUBJECTS = {
    "fixed.account": make_account_fixed,
    "fixed.counter": make_counter_fixed,
    "fixed.stack": make_stack_fixed,
    "fixed.ctrace": make_ctrace_fixed,
    "fixed.reorder": make_reorder_fixed,
}

SYSTEMATIC = ("DFS", "IPB", "IDB")
RANDOMIZED = ("Rand", "PCT")
TECHNIQUES = SYSTEMATIC + RANDOMIZED

RAND_SEED = 42


def _make(technique: str, **kwargs):
    if technique == "DFS":
        return DFSExplorer(**kwargs)
    if technique == "IPB":
        return make_ipb(**kwargs)
    if technique == "IDB":
        return make_idb(**kwargs)
    if technique == "Rand":
        return RandomExplorer(seed=RAND_SEED, **kwargs)
    if technique == "PCT":
        return PCTExplorer(seed=RAND_SEED, **kwargs)
    raise KeyError(technique)


def run_cell(name: str, factory, technique: str, limit: int, shards: int) -> dict:
    if technique in SYSTEMATIC:
        # Baseline: the classic serial explorer (identical output).
        t0 = time.perf_counter()
        baseline = _make(technique).explore(factory(), limit)
        t1 = time.perf_counter()
        sharded = _make(
            technique, shards=shards, program_source=factory
        ).explore(factory(), limit)
        t2 = time.perf_counter()
        baseline_kind = "serial"
    else:
        # Baseline: the same index-seeded plan executed inline (no pool).
        t0 = time.perf_counter()
        baseline = _make(technique, shards=shards).explore(factory(), limit)
        t1 = time.perf_counter()
        sharded = _make(
            technique, shards=shards, program_source=factory
        ).explore(factory(), limit)
        t2 = time.perf_counter()
        baseline_kind = "inline"
    serial_s, sharded_s = t1 - t0, t2 - t1
    return {
        "subject": name,
        "technique": technique,
        "limit": limit,
        "shards": shards,
        "baseline_kind": baseline_kind,
        "stats_identical": baseline.as_dict() == sharded.as_dict(),
        "schedules": sharded.schedules,
        "completed": sharded.completed,
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "speedup": round(serial_s / max(sharded_s, 1e-9), 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--limit", type=int, default=20_000,
        help="schedule limit for the systematic techniques",
    )
    parser.add_argument(
        "--rand-limit", type=int, default=4_000,
        help="execution count for Rand/PCT (they never complete)",
    )
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument(
        "--subjects", default=",".join(SUBJECTS),
        help="comma-separated subset of: " + ", ".join(SUBJECTS),
    )
    parser.add_argument("--techniques", default=",".join(TECHNIQUES))
    args = parser.parse_args(argv)

    cells = []
    failures = []
    for name in args.subjects.split(","):
        factory = SUBJECTS[name.strip()]
        for technique in args.techniques.split(","):
            technique = technique.strip()
            limit = args.limit if technique in SYSTEMATIC else args.rand_limit
            cell = run_cell(name.strip(), factory, technique, limit, args.shards)
            cells.append(cell)
            tag = f"{cell['subject']} {cell['technique']}"
            print(
                f"{tag:24s} schedules={cell['schedules']:>6} "
                f"{cell['baseline_kind']} {cell['serial_seconds']:>8.3f}s -> "
                f"sharded {cell['sharded_seconds']:>8.3f}s "
                f"(x{cell['speedup']:.2f}) "
                f"{'OK' if cell['stats_identical'] else 'DIVERGED'}"
            )
            if not cell["stats_identical"]:
                failures.append(f"{tag}: as_dict() diverged serial vs sharded")

    speedups = [c["speedup"] for c in cells]
    payload = {
        "bench": "cell_sharding",
        "shards": args.shards,
        "cores": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "cells": cells,
        "summary": {
            "subjects": len({c["subject"] for c in cells}),
            "all_stats_identical": all(c["stats_identical"] for c in cells),
            "min_speedup": min(speedups, default=None),
            "max_speedup": max(speedups, default=None),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {args.out} (cores={payload['cores']})")
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
