"""Process-tree supervision, resource ceilings, and graceful degradation.

PRs 5 and 7 turned a study cell into a *process tree*: the pool worker
that runs the cell may fork shard workers (:mod:`repro.core.sharding`),
which fork parked COW snapshot holders (:mod:`repro.engine.snapshot`),
which chain-fork more holders.  The PR 3 reliability layer supervised
exactly one process per cell; this module supervises the whole tree.

Three cooperating layers:

**Enrollment** (:func:`enroll_cell_worker`): every pool worker moves
itself into its own process group (``os.setpgid(0, 0)``) before running
cells.  Forked descendants inherit the group, so the group id *is* the
tree id: one ``os.killpg`` reaps a hung worker together with every shard
worker and parked holder beneath it, never orphaning a COW child.  The
parent records each worker's group in a :class:`StudySupervisor` and
sweeps the groups again at pool teardown, counting any survivor it had
to reap.

**Ceilings** (:class:`CellSupervisor`): inside the worker, a sampling
thread walks ``/proc`` every :data:`SUPERVISOR_POLL_SECONDS` and sums
RSS and open-fd counts over the worker's descendant tree, plus free
disk space under the checkpoint/results directory.  A breach trips the
cell's cooperative :class:`~repro.core.budget.Budget` (the exploration
stops at its next poll with partial, well-formed stats), kills the
descendant tree, and surfaces as a retryable taxonomy status —
``oom`` for the RSS ceiling, ``resource`` for fd/disk breaches and for
descendants found still alive when the cell ends.  Attribution lands in
the cell record (``resource`` key: peak tree RSS/fds, the breach
detail), so an OOM-killed holder is distinguishable from an engine bug.

**Degradation** (:class:`DegradationController`): under sustained
memory pressure the study *slows down instead of dying* — after the
first ``oom`` cell the runner disables fork snapshots for subsequent
cells, after the next it halves intra-cell shards (floor 2: dropping to
1 shard would switch Rand/PCT off the index-seeded stream and change
results).  Both are pure go-slower knobs mirroring PR 7's go-faster
ones: excluded from the checkpoint fingerprint, logged as events, and
stamped into the run summary — never into the science.

Everything degrades gracefully off Linux: without ``/proc`` the
samplers return ``None`` and ceilings simply never trip; without
``os.killpg`` tree kills fall back to single-process termination.  A
study with no ceilings configured takes none of these paths and its
output stays byte-identical to the pre-supervision stack.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from . import taxonomy

#: How often the in-worker sampling thread walks the process tree.  The
#: environment override exists for the fault drills: an injected breach
#: should be noticed faster than a human-scale poll.
SUPERVISOR_POLL_SECONDS = float(
    os.environ.get("REPRO_SUPERVISOR_POLL", "0.2")
)

#: ``oom`` breaches observed before each degradation rung engages:
#: the first breach disables snapshots, the second halves shards.
DEGRADE_AFTER_BREACHES = 1

#: Shard floor for degradation: halving below 2 would flip Rand/PCT off
#: the index-seeded stream (a result-affecting regime change — see
#: ``StudyConfig.fingerprint``), so the controller never crosses it.
MIN_DEGRADED_SHARDS = 2

#: Test hook: when not ``None``, reported as the free-disk reading for
#: every disk-guard sample (the deterministic ``disk-full`` fault).
_disk_override: Optional[int] = None


def set_disk_override(free_bytes: Optional[int]) -> None:
    """Force the disk guard's free-space reading (fault injection only)."""
    global _disk_override
    _disk_override = free_bytes


def proc_available() -> bool:
    """Whether ``/proc``-based tree sampling works on this host."""
    return os.path.isdir("/proc/self")


# -- /proc readers -----------------------------------------------------------


def read_rss(pid: int) -> Optional[int]:
    """Resident set size of one process in bytes (``None`` if gone)."""
    try:
        with open(f"/proc/{pid}/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def read_fd_count(pid: int) -> Optional[int]:
    """Open file descriptors of one process (``None`` if gone)."""
    try:
        return len(os.listdir(f"/proc/{pid}/fd"))
    except OSError:
        return None


def _read_stat_fields(pid: int) -> Optional[Tuple[int, int]]:
    """(ppid, pgid) from ``/proc/<pid>/stat``; ``None`` if gone.

    The comm field (2) may contain spaces and parentheses, so the parse
    anchors on the *last* ``)`` — everything after it is space-split.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            data = fh.read()
    except OSError:
        return None
    try:
        rest = data[data.rindex(b")") + 2:].split()
        return int(rest[1]), int(rest[2])  # fields 4 (ppid) and 5 (pgrp)
    except (ValueError, IndexError):
        return None


def _all_pids() -> List[int]:
    try:
        return [int(name) for name in os.listdir("/proc") if name.isdigit()]
    except OSError:
        return []


def children_map() -> Dict[int, List[int]]:
    """ppid -> [child pids] over every live process, one /proc scan."""
    out: Dict[int, List[int]] = {}
    for pid in _all_pids():
        fields = _read_stat_fields(pid)
        if fields is not None:
            out.setdefault(fields[0], []).append(pid)
    return out


def descendant_pids(root: int) -> List[int]:
    """Every live descendant of ``root`` (excluding ``root`` itself).

    Built from one full ``/proc`` scan, so a racing fork/exit can be
    missed for one sample — the next poll sees it.  Reparented orphans
    (descendants whose ancestor already died) are *not* found here;
    they are swept by process group instead (:func:`pids_in_groups`).
    """
    kids = children_map()
    out: List[int] = []
    frontier = [root]
    while frontier:
        pid = frontier.pop()
        for child in kids.get(pid, ()):
            out.append(child)
            frontier.append(child)
    return out


def pids_in_groups(pgids: Iterable[int]) -> List[int]:
    """Live pids whose process group is one of ``pgids`` (one scan).

    Catches what a parent-link walk cannot: descendants that were
    reparented to init when their forker died.  Enrolled cell workers
    are group leaders, so group membership survives any ancestor death.
    Zombies are skipped: they hold no resources, cannot be signalled
    away, and only their (possibly init) parent can reap them — listing
    them would make a clean group kill look like it left survivors.
    """
    wanted = set(pgids)
    out = []
    for pid in _all_pids():
        try:
            with open(f"/proc/{pid}/stat", "rb") as fh:
                data = fh.read()
        except OSError:
            continue
        try:
            rest = data[data.rindex(b")") + 2:].split()
            state, pgid = rest[0], int(rest[2])
        except (ValueError, IndexError):
            continue
        if pgid in wanted and state != b"Z":
            out.append(pid)
    return out


def tree_sample(root: int) -> Optional[Tuple[int, int, int]]:
    """(tree RSS bytes, tree fd count, process count) over ``root`` and
    its descendants; ``None`` when /proc is unavailable or ``root`` is
    gone.  Processes that exit mid-sample contribute nothing.

    When ``root`` leads its own process group (an enrolled cell worker),
    group members are included too: a parked snapshot holder whose
    forker already exited is reparented to init and invisible to the
    parent-link walk, but it stays in the group — the same membership
    :func:`kill_tree` and :meth:`StudySupervisor.sweep` rely on, so
    ``peak_procs`` counts exactly what a group kill would take."""
    rss = read_rss(root)
    if rss is None:
        return None
    fds = read_fd_count(root) or 0
    procs = 1
    pids = set(descendant_pids(root))
    fields = _read_stat_fields(root)
    if fields is not None and fields[1] == root:
        own = os.getpgid(0) if hasattr(os, "getpgid") else -1
        if root != own:
            pids.update(p for p in pids_in_groups([root]) if p != root)
    for pid in sorted(pids):
        sub = read_rss(pid)
        if sub is None:
            continue
        rss += sub
        fds += read_fd_count(pid) or 0
        procs += 1
    return rss, fds, procs


def free_disk_bytes(path: str) -> Optional[int]:
    """Free bytes on the filesystem holding ``path`` (honours the
    fault-injection override)."""
    if _disk_override is not None:
        return _disk_override
    probe = path
    while probe and not os.path.isdir(probe):
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    try:
        stat = os.statvfs(probe or ".")
    except (OSError, AttributeError):
        return None
    return stat.f_bavail * stat.f_frsize


# -- enrollment and tree kills ----------------------------------------------


def enroll_cell_worker() -> bool:
    """Move this process into its own process group (idempotent).

    Called from every pool-worker initializer: the worker becomes a
    group leader, every process it forks inherits the group, and one
    ``os.killpg(worker_pid)`` takes down the whole tree.  Returns
    whether enrollment succeeded (it cannot on non-POSIX hosts, or for
    a session leader — both fall back to single-process supervision).
    """
    if not hasattr(os, "setpgid"):
        return False
    try:
        os.setpgid(0, 0)
    except OSError:
        return False
    return True


def kill_tree(root: int, sig: int = signal.SIGKILL) -> List[int]:
    """Signal ``root``'s whole process tree; returns the pids signalled.

    Prefers one ``killpg`` on the root's own group (reaches reparented
    orphans).  When the root is not a group leader — enrollment failed —
    falls back to signalling the /proc-walked descendants individually,
    deepest last, then the root.  Never signals this process's own
    group.
    """
    signalled: List[int] = []
    pgid = None
    if hasattr(os, "getpgid"):
        try:
            pgid = os.getpgid(root)
        except OSError:
            pgid = None
    if (
        pgid is not None
        and pgid == root
        and hasattr(os, "killpg")
        and pgid != os.getpgid(0)
    ):
        members = pids_in_groups([pgid]) or [root]
        try:
            os.killpg(pgid, sig)
            return members
        except OSError:
            pass
    for pid in descendant_pids(root) + [root]:
        try:
            os.kill(pid, sig)
            signalled.append(pid)
        except OSError:
            pass
    return signalled


def reap_children(pids: Iterable[int], timeout: float = 2.0) -> None:
    """Collect exit statuses for killed *direct children* (best effort;
    non-children raise ECHILD and are skipped — init reaps them)."""
    deadline = time.monotonic() + timeout
    for pid in pids:
        while True:
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
            except (ChildProcessError, OSError):
                break
            if done:
                break
            if time.monotonic() >= deadline:
                break
            time.sleep(0.01)


# -- in-worker ceilings ------------------------------------------------------


class ResourceBreach(RuntimeError):
    """A resource ceiling was crossed (or orphans found) in one cell.

    ``status`` is the taxonomy status the cell record should carry
    (``oom`` for the RSS ceiling, ``resource`` otherwise); ``detail``
    is the human attribution line for the record's ``error`` field.
    """

    def __init__(self, status: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class CellSupervisor:
    """Per-cell resource watchdog, run *inside* the worker process.

    A daemon thread samples the worker's own process tree every
    :data:`SUPERVISOR_POLL_SECONDS`.  On the first ceiling breach it

    1. trips the cell's :class:`~repro.core.budget.Budget` (cooperative
       stop: the exploration ends at its next poll with partial stats),
    2. kills every descendant process (a parked holder must not sit on
       its COW pages while the cell unwinds), and
    3. records the breach for :meth:`finish` to surface.

    :meth:`finish` additionally reaps any descendants still alive after
    the exploration returned — a leaked holder or shard worker is
    contained on the spot and reported as a ``resource`` breach instead
    of surviving the cell.
    """

    def __init__(
        self,
        budget,
        *,
        max_rss: Optional[int] = None,
        max_fds: Optional[int] = None,
        min_free_disk: Optional[int] = None,
        watch_dir: Optional[str] = None,
        poll_seconds: float = SUPERVISOR_POLL_SECONDS,
        pid: Optional[int] = None,
    ) -> None:
        self.budget = budget
        self.max_rss = max_rss
        self.max_fds = max_fds
        self.min_free_disk = min_free_disk
        self.watch_dir = watch_dir or "."
        self.poll_seconds = poll_seconds
        self.pid = os.getpid() if pid is None else pid
        self.peak_rss = 0
        self.peak_fds = 0
        self.peak_procs = 0
        self.breach: Optional[ResourceBreach] = None
        self.killed_pids: List[int] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def from_config(cls, config, budget) -> Optional["CellSupervisor"]:
        """A supervisor for one cell, or ``None`` when no ceiling is
        configured (the fault-free fast path: zero new work, zero new
        record keys)."""
        if (
            config.cell_max_rss is None
            and config.cell_max_fds is None
            and config.min_free_disk is None
        ):
            return None
        return cls(
            budget,
            max_rss=config.cell_max_rss,
            max_fds=config.cell_max_fds,
            min_free_disk=config.min_free_disk,
            watch_dir=getattr(config, "supervise_dir", None) or ".",
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "CellSupervisor":
        if proc_available() or self.min_free_disk is not None:
            self._thread = threading.Thread(
                target=self._run, name="cell-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def finish(self) -> Optional[ResourceBreach]:
        """Stop sampling, reap leftover descendants, return the breach
        (if any).  Idempotent; safe after an exploration exception."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.breach is None:
            # Final deterministic sample: a cell faster than one poll
            # interval must still hit its ceilings (injected ballast is
            # held for the whole cell, so it is visible here).
            self._sample()
        if self.breach is None and proc_available():
            leftover = descendant_pids(self.pid)
            if leftover:
                self._contain(
                    taxonomy.RESOURCE,
                    f"{len(leftover)} orphaned descendant process(es) "
                    f"survived the cell and were reaped "
                    f"(pids {sorted(leftover)})",
                )
        return self.breach

    def snapshot(self) -> dict:
        """The cell record's ``resource`` attribution payload."""
        out = {
            "peak_rss": self.peak_rss,
            "peak_fds": self.peak_fds,
            "peak_procs": self.peak_procs,
        }
        if self.killed_pids:
            out["reaped_pids"] = sorted(self.killed_pids)
        return out

    # -- sampling loop ------------------------------------------------------

    def _run(self) -> None:
        # Sample immediately: a cell can breach before the first poll
        # interval elapses (an allocation made on entry), and a cell
        # faster than the interval should still record its peaks.
        if self._sample():
            return
        while not self._stop.wait(self.poll_seconds):
            if self._sample():
                return

    def _sample(self) -> bool:
        """One poll; returns True (stop sampling) on a breach."""
        sample = tree_sample(self.pid) if proc_available() else None
        if sample is not None:
            rss, fds, procs = sample
            self.peak_rss = max(self.peak_rss, rss)
            self.peak_fds = max(self.peak_fds, fds)
            self.peak_procs = max(self.peak_procs, procs)
            if self.max_rss is not None and rss > self.max_rss:
                self._contain(
                    taxonomy.OOM,
                    f"cell process tree RSS {rss} bytes exceeded the "
                    f"ceiling ({self.max_rss}); {procs} process(es) "
                    "sampled",
                )
                return True
            if self.max_fds is not None and fds > self.max_fds:
                self._contain(
                    taxonomy.RESOURCE,
                    f"cell process tree held {fds} file descriptors, "
                    f"ceiling {self.max_fds}",
                )
                return True
        if self.min_free_disk is not None:
            free = free_disk_bytes(self.watch_dir)
            if free is not None and free < self.min_free_disk:
                self._contain(
                    taxonomy.RESOURCE,
                    f"free disk under {self.watch_dir!r} is {free} "
                    f"bytes, below the {self.min_free_disk}-byte floor",
                )
                return True
        return False

    def _contain(self, status: str, detail: str) -> None:
        """Record a breach, trip the budget, kill the descendant tree."""
        if self.breach is None:
            self.breach = ResourceBreach(status, detail)
        if self.budget is not None:
            self.budget.trip(detail)
        killed = []
        for pid in descendant_pids(self.pid):
            try:
                os.kill(pid, signal.SIGKILL)
                killed.append(pid)
            except OSError:
                pass
        reap_children(killed)
        self.killed_pids.extend(killed)


# -- parent-side tree supervision --------------------------------------------


class StudySupervisor:
    """Parent-side ledger of worker process groups.

    The runner registers every pool worker pid it observes; watchdog
    kills and drain teardowns go through :meth:`kill_worker_tree`
    (group kill, so shard workers and holders die with their worker),
    and :meth:`sweep` runs at pool teardown to find and reap anything
    still alive in a registered group — the orphan backstop.
    """

    def __init__(self) -> None:
        self.worker_pgids: Set[int] = set()
        self.reaped_orphans = 0
        self.tree_kills = 0

    def register_worker(self, pid: int) -> None:
        self.worker_pgids.add(pid)

    def kill_worker_tree(self, pid: int, sig: int = signal.SIGKILL) -> int:
        """Kill one worker with its whole tree; returns pids signalled."""
        self.worker_pgids.add(pid)
        signalled = kill_tree(pid, sig)
        self.tree_kills += 1
        return len(signalled)

    def sweep(self) -> int:
        """Kill every survivor in any registered worker group (the
        workers themselves should already be gone).  Returns the number
        of orphans reaped; accumulates into :attr:`reaped_orphans`."""
        if not self.worker_pgids or not proc_available():
            return 0
        own = os.getpgid(0) if hasattr(os, "getpgid") else -1
        survivors = [
            pid
            for pid in pids_in_groups(self.worker_pgids - {own})
            if pid != os.getpid()
        ]
        for pid in survivors:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
        reap_children(survivors)
        self.reaped_orphans += len(survivors)
        return len(survivors)


# -- graceful degradation ----------------------------------------------------


class DegradationController:
    """Turn sustained memory pressure into go-slower knob changes.

    Observes every finished cell record; after
    :data:`DEGRADE_AFTER_BREACHES` ``oom`` breaches it disables fork
    snapshots for subsequent cells, after as many more it halves
    intra-cell shards (never below :data:`MIN_DEGRADED_SHARDS` — the
    Rand/PCT stream regime must not change).  Both knobs are excluded
    from the checkpoint fingerprint, so degrading mid-run can never
    invalidate the journal; the events list is stamped into the run
    summary for the operator.
    """

    def __init__(
        self,
        enabled: bool = True,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.enabled = enabled
        self.log = log
        self.oom_breaches = 0
        #: Applied knob changes, oldest first:
        #: ``{"action", "reason", "after_breaches"}`` dicts.
        self.events: List[dict] = []

    def observe(self, record: dict, config) -> bool:
        """Feed one finished cell record; mutates ``config`` (the
        runner's *effective* config, never the fingerprinted original)
        and returns whether a knob changed."""
        if taxonomy.status_of(record) != taxonomy.OOM:
            return False
        self.oom_breaches += 1
        if not self.enabled or self.oom_breaches < DEGRADE_AFTER_BREACHES:
            return False
        cell = f"{record.get('bench')}/{record.get('technique')}"
        if config.snapshots:
            return self._apply(
                config,
                "disable-snapshots",
                f"{cell} breached the RSS ceiling; fork snapshots "
                "disabled for subsequent cells",
            )
        if config.cell_shards > MIN_DEGRADED_SHARDS:
            halved = max(MIN_DEGRADED_SHARDS, config.cell_shards // 2)
            return self._apply(
                config,
                f"halve-shards:{config.cell_shards}->{halved}",
                f"{cell} breached the RSS ceiling; intra-cell shards "
                f"reduced {config.cell_shards} -> {halved}",
                shards=halved,
            )
        return False

    def _apply(
        self, config, action: str, reason: str, shards: Optional[int] = None
    ) -> bool:
        if shards is None:
            config.snapshots = False
        else:
            config.cell_shards = shards
        self.events.append(
            {
                "action": action,
                "reason": reason,
                "after_breaches": self.oom_breaches,
            }
        )
        if self.log:
            self.log(f"  [degrade] {reason}")
        return True

