"""Crash-consistent study store: the SQLite (WAL) checkpoint backend.

One ``study.sqlite`` per checkpoint directory holds every run the
directory has seen — runs, per-cell attempt history, supervision events,
and the final stats payloads (inside each cell record) — and is the
single source of truth for checkpoint/resume, ``--retry-errors``,
reporting, and ``raw.json``-style exports.  The v2 JSONL journal
(:func:`read_journal`) remains as the fallback format and is imported
transparently: resuming a run that only has a ``<run-id>.jsonl`` file
migrates it into the store on open.

Integrity story (carried forward from the journal):

* the ``runs`` row binds a run to its :meth:`StudyConfig.fingerprint`,
  so a resume under a different configuration is rejected, exactly like
  the journal header check;
* every cell/event row stores the record's canonical JSON next to a
  CRC32 of it — the same digest scheme as journal v2 — so a corrupted
  row (bit rot, injected garbage) is detected and skipped on read and
  that cell simply re-runs.

Crash consistency: the store runs in WAL mode with ``synchronous=FULL``
and commits once per cell record.  ``kill -9`` at any byte boundary —
including mid-transaction, which the ``store-kill`` fault injects
deterministically — recovers to the last *committed* cell: SQLite
replays the WAL up to the last commit frame and discards the torn tail.
A run row without ``closed_ts`` plus a stale lease is the attribution:
the previous writer died unclean, and the takeover is logged (progress
line + an ``events`` row).

Single-writer lease: one ``leases`` row per run, refreshed by a
heartbeat from the run loop.  A second ``--resume`` against a live run
raises :class:`StoreLockedError` instead of corrupting it; a lease whose
owner pid is provably dead (same host) or whose heartbeat is older than
the TTL is taken over safely.

Graceful degradation: a directory where the store cannot be opened
(readonly filesystem, corrupt database file, disk full) falls back to
the JSONL journal with a warning — see :func:`open_backend`.  A failed
*append* (disk filled up mid-run) keeps the run alive; the record is
retained in memory only and a warning names the cells that will re-run
on resume.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import time
import zlib
from typing import Dict, List, Optional, TextIO, Tuple

from . import faults as faults_mod
from . import taxonomy
from .config import StudyConfig

CellKey = Tuple[str, str]  # (benchmark name, technique)

CHECKPOINT_VERSION = 2

#: The store's own schema version (``meta`` table).
STORE_VERSION = 1

#: Filename of the store inside a checkpoint directory.
STORE_FILENAME = "study.sqlite"

#: A lease whose heartbeat is older than this many seconds may be taken
#: over even when its owner pid cannot be probed (other host, pid
#: recycled).  Same-host dead pids are taken over immediately.
LEASE_TTL_SECONDS = 60.0

#: Minimum seconds between heartbeat writes (the run loop may call
#: :meth:`StoreBackend.heartbeat` far more often; writes are throttled).
HEARTBEAT_SECONDS = 5.0


class StoreLockedError(ValueError):
    """Another live writer holds this run's lease; resume refused."""


# -- journal v2 codec -------------------------------------------------------
#
# The line format predates the store (journal v2); the store reuses the
# exact canonical-JSON + CRC32 digest for its rows, so one scheme covers
# both backends and the migration is a byte-exact re-verification.

def record_digest(record: dict) -> str:
    """CRC32 (hex) of a record's canonical JSON, ``crc`` field excluded."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_journal_line(record: dict) -> str:
    """One v2 journal line: the record JSON with a ``crc`` field holding
    the CRC32 (hex) of the record serialized *without* it.

    Serialization is canonical (sorted keys, compact separators) on both
    the write and the verify side, so the check is byte-exact.
    """
    rec = dict(record)
    rec["crc"] = record_digest(record)
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


def decode_journal_line(line: str) -> Optional[dict]:
    """Parse and verify one journal line; ``None`` for any corruption.

    v1 lines carry no ``crc`` and are accepted as-is (read-compat); v2
    lines must round-trip their CRC exactly.
    """
    try:
        rec = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(rec, dict):
        return None
    crc = rec.pop("crc", None)
    if crc is not None and crc != record_digest(rec):
        return None
    return rec


class JournalInfo:
    """Everything one journal read learned (see :func:`read_journal`)."""

    __slots__ = ("completed", "header", "corrupt_lines", "version")

    def __init__(self) -> None:
        #: Last record per cell key (a retried cell's newest record wins).
        self.completed: Dict[CellKey, dict] = {}
        self.header: Optional[dict] = None
        #: 1-based line numbers that failed to parse or failed their CRC.
        self.corrupt_lines: List[int] = []
        self.version: Optional[int] = None


def _fingerprint_mismatch(what: str, theirs, ours) -> ValueError:
    return ValueError(
        f"checkpoint {what} was produced under a different study "
        f"configuration (fingerprint {theirs} != {ours}); use a new "
        "--run-id or delete it"
    )


def read_journal(path: str, config: Optional[StudyConfig] = None) -> JournalInfo:
    """Read a checkpoint journal, skipping corrupted lines anywhere.

    Raises ``ValueError`` when the journal belongs to a run with a
    different configuration fingerprint (pass ``config=None`` to skip the
    check), or when cell records exist but the header line is unreadable
    — the fingerprint can then not be verified, so resuming would risk
    mixing configurations.
    """
    info = JournalInfo()
    if not os.path.exists(path):
        return info
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            rec = decode_journal_line(line)
            if rec is None:
                info.corrupt_lines.append(lineno)
                continue
            kind = rec.get("kind")
            if kind == "header":
                info.header = rec
                info.version = rec.get("version")
                if config is not None:
                    theirs = rec.get("fingerprint")
                    ours = config.fingerprint()
                    if theirs != ours:
                        raise _fingerprint_mismatch(path, theirs, ours)
            elif kind == "cell":
                info.completed[(rec["bench"], rec["technique"])] = rec
    if info.completed and info.header is None:
        raise ValueError(
            f"checkpoint {path} has cell records but no readable header "
            "line — its configuration fingerprint cannot be verified; "
            "use a new --run-id or delete the file"
        )
    return info


# -- the SQLite store -------------------------------------------------------

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id        TEXT PRIMARY KEY,
    fingerprint   TEXT NOT NULL,
    version       INTEGER NOT NULL,
    created_ts    REAL NOT NULL,
    closed_ts     REAL,
    config_json   TEXT,
    imported_from TEXT
);
CREATE TABLE IF NOT EXISTS cells (
    id        INTEGER PRIMARY KEY,
    run_id    TEXT NOT NULL,
    bench     TEXT NOT NULL,
    technique TEXT NOT NULL,
    attempt   INTEGER NOT NULL,
    status    TEXT NOT NULL,
    ts        REAL,
    record    TEXT NOT NULL,
    crc       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS cells_by_cell
    ON cells (run_id, bench, technique, id);
CREATE INDEX IF NOT EXISTS cells_by_status
    ON cells (run_id, status);
CREATE TABLE IF NOT EXISTS events (
    id     INTEGER PRIMARY KEY,
    run_id TEXT NOT NULL,
    kind   TEXT NOT NULL,
    ts     REAL,
    record TEXT NOT NULL,
    crc    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS events_by_run ON events (run_id, kind, id);
CREATE TABLE IF NOT EXISTS leases (
    run_id       TEXT PRIMARY KEY,
    owner        TEXT NOT NULL,
    host         TEXT NOT NULL,
    pid          INTEGER NOT NULL,
    acquired_ts  REAL NOT NULL,
    heartbeat_ts REAL NOT NULL
);
"""


def store_path_for(checkpoint_dir: str) -> str:
    return os.path.join(checkpoint_dir, STORE_FILENAME)


def _connect(path: str) -> sqlite3.Connection:
    conn = sqlite3.connect(path, timeout=10.0)
    conn.execute("PRAGMA journal_mode=WAL")
    # FULL: every commit frame is fsynced before COMMIT returns — the
    # per-cell commit is durable against kill -9 and power loss, which
    # is the whole point of commit-per-record.
    conn.execute("PRAGMA synchronous=FULL")
    conn.execute("PRAGMA foreign_keys=ON")
    return conn


def _pid_alive(pid: int) -> Optional[bool]:
    """Best-effort liveness probe; ``None`` when it cannot be determined."""
    if pid <= 0:
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return None
    return True


class StudyStore:
    """One open store file, scoped to one run (see module docstring).

    Writer methods require :meth:`acquire_lease` to have succeeded; the
    read-only module helpers (:func:`list_runs`, :func:`load_run`) never
    take a lease.
    """

    def __init__(self, path: str, run_id: str) -> None:
        self.path = path
        self.run_id = run_id
        self.conn = _connect(path)
        with self.conn:  # one transaction; idempotent
            self.conn.executescript(_SCHEMA)
            self.conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("store_version", str(STORE_VERSION)),
            )
        self._owner: Optional[str] = None
        self._last_heartbeat = 0.0

    def close(self) -> None:
        if self.conn is None:
            return
        try:
            if self._owner is not None:
                with self.conn:
                    self.conn.execute(
                        "UPDATE runs SET closed_ts = ? WHERE run_id = ?",
                        (round(time.time(), 3), self.run_id),
                    )
                    self.conn.execute(
                        "DELETE FROM leases WHERE run_id = ? AND owner = ?",
                        (self.run_id, self._owner),
                    )
                self._owner = None
            # Fold the WAL back into the main file on clean close so a
            # copied/archived store is one self-contained file.
            self.conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error:
            pass  # closing best-effort; the committed data is safe
        finally:
            self.conn.close()
            self.conn = None

    # -- runs ---------------------------------------------------------------

    def run_row(self) -> Optional[sqlite3.Row]:
        self.conn.row_factory = sqlite3.Row
        cur = self.conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (self.run_id,)
        )
        return cur.fetchone()

    def ensure_run(self, config: StudyConfig) -> None:
        """Create the run row, or verify its fingerprint on resume."""
        ours = config.fingerprint()
        row = self.run_row()
        if row is None:
            from dataclasses import asdict

            with self.conn:
                self.conn.execute(
                    "INSERT INTO runs (run_id, fingerprint, version, "
                    "created_ts, config_json) VALUES (?, ?, ?, ?, ?)",
                    (
                        self.run_id,
                        ours,
                        CHECKPOINT_VERSION,
                        round(time.time(), 3),
                        json.dumps(asdict(config), sort_keys=True),
                    ),
                )
            return
        theirs = row["fingerprint"]
        if theirs != ours:
            raise _fingerprint_mismatch(
                f"run {self.run_id!r} in {self.path}", theirs, ours
            )

    # -- lease --------------------------------------------------------------

    def acquire_lease(
        self,
        ttl: float = LEASE_TTL_SECONDS,
        log=None,
    ) -> None:
        """Become this run's single writer, or raise :class:`StoreLockedError`.

        Takeover is allowed when the current owner is provably dead
        (same host, pid gone) or its heartbeat is older than ``ttl``.
        An unclean previous shutdown (stale lease and/or a run row with
        no ``closed_ts``) is attributed in the log and an ``events`` row.
        """
        now = time.time()
        me = f"{socket.gethostname()}:{os.getpid()}:{os.urandom(4).hex()}"
        with self.conn:
            self.conn.execute("BEGIN IMMEDIATE").close()
            self.conn.row_factory = sqlite3.Row
            row = self.conn.execute(
                "SELECT * FROM leases WHERE run_id = ?", (self.run_id,)
            ).fetchone()
            takeover = None
            if row is not None:
                age = now - row["heartbeat_ts"]
                alive = (
                    _pid_alive(row["pid"])
                    if row["host"] == socket.gethostname()
                    else None
                )
                if alive is False:
                    takeover = (
                        f"previous writer pid {row['pid']} is dead "
                        f"(last heartbeat {age:.1f}s ago)"
                    )
                elif age > ttl and alive is not True:
                    takeover = (
                        f"lease of {row['owner']} is stale "
                        f"(last heartbeat {age:.1f}s ago > TTL {ttl:g}s)"
                    )
                else:
                    raise StoreLockedError(
                        f"run {self.run_id!r} in {self.path} is being "
                        f"written by {row['owner']} (heartbeat {age:.1f}s "
                        "ago); a second concurrent writer would corrupt "
                        "it — wait for that run or use a new --run-id"
                    )
            self.conn.execute(
                "INSERT OR REPLACE INTO leases "
                "(run_id, owner, host, pid, acquired_ts, heartbeat_ts) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (self.run_id, me, socket.gethostname(), os.getpid(), now, now),
            )
            self._owner = me
            run = self.conn.execute(
                "SELECT closed_ts FROM runs WHERE run_id = ?", (self.run_id,)
            ).fetchone()
            unclean = run is not None and run["closed_ts"] is None
            if run is not None:
                self.conn.execute(
                    "UPDATE runs SET closed_ts = NULL WHERE run_id = ?",
                    (self.run_id,),
                )
            if takeover or unclean:
                n = self.conn.execute(
                    "SELECT COUNT(*) FROM cells WHERE run_id = ?",
                    (self.run_id,),
                ).fetchone()[0]
                detail = takeover or "run was never closed cleanly"
                message = (
                    f"recovering run {self.run_id!r} from unclean "
                    f"shutdown: {detail}; resuming from {n} committed "
                    "cell record(s)"
                )
                self._insert_event(
                    {"kind": "takeover", "detail": detail, "ts": round(now, 3)}
                )
                if log:
                    log(message)
        self._last_heartbeat = time.monotonic()

    def heartbeat(self) -> None:
        """Refresh the lease (throttled to :data:`HEARTBEAT_SECONDS`)."""
        if self._owner is None:
            return
        now = time.monotonic()
        if now - self._last_heartbeat < HEARTBEAT_SECONDS:
            return
        try:
            with self.conn:
                self.conn.execute(
                    "UPDATE leases SET heartbeat_ts = ? "
                    "WHERE run_id = ? AND owner = ?",
                    (time.time(), self.run_id, self._owner),
                )
            self._last_heartbeat = now
        except sqlite3.OperationalError:
            pass  # a missed heartbeat is recoverable; the next one retries

    # -- writes -------------------------------------------------------------

    def _insert_cell(self, record: dict, crc: Optional[str] = None) -> None:
        """Insert one cell record inside the caller's open transaction."""
        attempt = self.conn.execute(
            "SELECT COUNT(*) FROM cells WHERE run_id = ? AND bench = ? "
            "AND technique = ?",
            (self.run_id, record["bench"], record["technique"]),
        ).fetchone()[0]
        self.conn.execute(
            "INSERT INTO cells (run_id, bench, technique, attempt, status, "
            "ts, record, crc) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                self.run_id,
                record["bench"],
                record["technique"],
                attempt,
                taxonomy.status_of(record),
                record.get("ts"),
                json.dumps(record, sort_keys=True, separators=(",", ":")),
                crc if crc is not None else record_digest(record),
            ),
        )

    def append_cell(
        self, record: dict, corrupt: bool = False, kill: bool = False
    ) -> None:
        """Commit one cell record (one durable transaction).

        ``corrupt`` stores a garbled digest (the ``corrupt-journal``
        fault: the row is detected and skipped on read, the cell
        re-runs).  ``kill`` SIGKILLs this process *after* the INSERT but
        *before* the COMMIT (the ``store-kill`` fault: the record must
        NOT survive — recovery lands on the previous committed cell).
        """
        crc = "deadbeef" if corrupt else None
        with self.conn:
            self.conn.execute("BEGIN IMMEDIATE").close()
            self._insert_cell(record, crc)
            if kill:  # pragma: no cover - exercised via subprocess drills
                os.kill(os.getpid(), 9)

    def _insert_event(self, record: dict) -> None:
        self.conn.execute(
            "INSERT INTO events (run_id, kind, ts, record, crc) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                self.run_id,
                record.get("kind", "event"),
                record.get("ts"),
                json.dumps(record, sort_keys=True, separators=(",", ":")),
                record_digest(record),
            ),
        )

    def append_event(self, record: dict) -> None:
        with self.conn:
            self._insert_event(record)

    # -- reads --------------------------------------------------------------

    def load_cells(self) -> JournalInfo:
        """Completed cells of this run, journal-reader semantics: last
        *valid* record per cell wins, corrupted rows are skipped and
        counted (those cells re-run)."""
        info = JournalInfo()
        row = self.run_row()
        if row is not None:
            info.header = {
                "kind": "header",
                "version": row["version"],
                "run_id": row["run_id"],
                "fingerprint": row["fingerprint"],
            }
            info.version = row["version"]
        for rowid, text, crc in self.conn.execute(
            "SELECT id, record, crc FROM cells WHERE run_id = ? ORDER BY id",
            (self.run_id,),
        ):
            try:
                rec = json.loads(text)
            except json.JSONDecodeError:
                rec = None
            if rec is None or record_digest(rec) != crc:
                info.corrupt_lines.append(rowid)
                continue
            info.completed[(rec["bench"], rec["technique"])] = rec
        return info

    def events(self, kind: Optional[str] = None) -> List[dict]:
        query = "SELECT record, crc FROM events WHERE run_id = ?"
        params: tuple = (self.run_id,)
        if kind is not None:
            query += " AND kind = ?"
            params += (kind,)
        out = []
        for text, crc in self.conn.execute(query + " ORDER BY id", params):
            try:
                rec = json.loads(text)
            except json.JSONDecodeError:
                continue
            if record_digest(rec) == crc:
                out.append(rec)
        return out

    # -- journal import -----------------------------------------------------

    def import_journal(self, journal_path: str, config: StudyConfig) -> int:
        """Migrate a v1/v2 JSONL journal into the store (one transaction).

        Called when the store has no row for this run but a journal file
        exists: every valid cell record is imported *in file order* (the
        full attempt history, so last-wins reads agree with the journal
        reader), supervision records land in ``events``, and corrupt
        lines are skipped exactly as :func:`read_journal` skips them.
        The journal file is left untouched (the run row remembers it in
        ``imported_from``; a later resume won't re-import).

        Returns the number of cell records imported.  Raises the same
        ``ValueError`` as :func:`read_journal` for a fingerprint mismatch
        or an unverifiable header.
        """
        header: Optional[dict] = None
        records: List[dict] = []
        events: List[dict] = []
        with open(journal_path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = decode_journal_line(line)
                if rec is None:
                    continue  # corrupt line: dropped, cell re-runs
                kind = rec.get("kind")
                if kind == "header":
                    header = rec
                    theirs = rec.get("fingerprint")
                    ours = config.fingerprint()
                    if theirs != ours:
                        raise _fingerprint_mismatch(journal_path, theirs, ours)
                elif kind == "cell":
                    records.append(rec)
                else:
                    events.append(rec)
        if records and header is None:
            raise ValueError(
                f"checkpoint {journal_path} has cell records but no "
                "readable header line — its configuration fingerprint "
                "cannot be verified; use a new --run-id or delete the file"
            )
        from dataclasses import asdict

        with self.conn:
            self.conn.execute("BEGIN IMMEDIATE").close()
            self.conn.execute(
                "INSERT INTO runs (run_id, fingerprint, version, created_ts, "
                "config_json, imported_from) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    self.run_id,
                    (header or {}).get("fingerprint", config.fingerprint()),
                    (header or {}).get("version", CHECKPOINT_VERSION),
                    (header or {}).get("ts", round(time.time(), 3)),
                    json.dumps(asdict(config), sort_keys=True),
                    journal_path,
                ),
            )
            for rec in records:
                self._insert_cell(rec)
            for rec in events:
                self._insert_event(rec)
        return len(records)


# -- checkpoint backends ----------------------------------------------------


class JournalBackend:
    """The v2 JSONL journal as a checkpoint backend (fallback / opt-out).

    Byte-for-byte the pre-store behaviour: header line on first open,
    one fsynced line per record, supervision appended at close.
    """

    kind = "journal"

    def __init__(
        self,
        config: StudyConfig,
        run_id: str,
        checkpoint_dir: str,
        fault_plan=None,
    ) -> None:
        self.config = config
        self.run_id = run_id
        self.checkpoint_dir = checkpoint_dir
        self.path = os.path.join(checkpoint_dir, f"{run_id}.jsonl")
        self._fault_plan = fault_plan
        self._fh: Optional[TextIO] = None

    def load(self) -> Dict[CellKey, dict]:
        return read_journal(self.path, self.config).completed

    def open(self) -> None:
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            header = {
                "kind": "header",
                "version": CHECKPOINT_VERSION,
                "run_id": self.run_id,
                "fingerprint": self.config.fingerprint(),
                "ts": round(time.time(), 3),
            }
            self._fh.write(encode_journal_line(header) + "\n")
            self._fh.flush()

    def append(self, record: dict) -> None:
        if self._fh is None:
            return
        line = encode_journal_line(record)
        if self._fault_plan and self._fault_plan.corrupts_journal(
            record["bench"], record["technique"]
        ):
            line = faults_mod.corrupt_line(line)
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append_supervision(self, summary: dict) -> None:
        if self._fh is None:
            return
        rec = dict(summary)
        rec["kind"] = "supervision"
        rec["ts"] = round(time.time(), 3)
        self._fh.write(encode_journal_line(rec) + "\n")
        self._fh.flush()

    def heartbeat(self) -> None:
        pass  # the journal has no lease

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class StoreBackend:
    """The SQLite store as a checkpoint backend (the default)."""

    kind = "store"

    def __init__(
        self,
        config: StudyConfig,
        run_id: str,
        checkpoint_dir: str,
        fault_plan=None,
        log=None,
    ) -> None:
        self.config = config
        self.run_id = run_id
        self.checkpoint_dir = checkpoint_dir
        self.path = store_path_for(checkpoint_dir)
        self._fault_plan = fault_plan
        self._log = log
        self.store: Optional[StudyStore] = None
        #: Cells whose append failed (disk full mid-run); they re-run on
        #: resume, which "recovers to the last committed cell".
        self.lost_appends: List[CellKey] = []

    def open(self) -> None:
        """Open + lease + (maybe) migrate.  Raises ``StoreLockedError``
        on a live concurrent writer, ``ValueError`` on a fingerprint
        mismatch — and lets ``sqlite3.Error`` escape for
        :func:`open_backend` to turn into a journal fallback."""
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.store = StudyStore(self.path, self.run_id)
        try:
            self.store.acquire_lease(log=self._log)
            journal = os.path.join(
                self.checkpoint_dir, f"{self.run_id}.jsonl"
            )
            if self.store.run_row() is None and os.path.exists(journal):
                n = self.store.import_journal(journal, self.config)
                if self._log:
                    self._log(
                        f"migrated journal {journal} into the store "
                        f"({n} cell record(s)); the journal file is kept "
                        "but no longer written"
                    )
            self.store.ensure_run(self.config)
        except Exception:
            store, self.store = self.store, None
            if store is not None:
                try:
                    store.conn.close()
                except Exception:
                    pass
            raise

    def load(self) -> Dict[CellKey, dict]:
        info = self.store.load_cells()
        if info.corrupt_lines and self._log:
            self._log(
                f"store: {len(info.corrupt_lines)} corrupted cell "
                f"record(s) in run {self.run_id!r} ignored (rows "
                f"{info.corrupt_lines}); those cells will re-run"
            )
        return info.completed

    def append(self, record: dict) -> None:
        key = (record["bench"], record["technique"])
        corrupt = bool(
            self._fault_plan
            and self._fault_plan.corrupts_journal(*key)
        )
        kill = bool(
            self._fault_plan and self._fault_plan.kills_store(*key)
        )
        try:
            self.store.append_cell(record, corrupt=corrupt, kill=kill)
        except sqlite3.Error as exc:
            # Disk full / I/O error mid-run: keep the study alive.  The
            # record lives only in memory now; resume re-runs the cell.
            self.lost_appends.append(key)
            if self._log:
                self._log(
                    f"store append failed for {key[0]}/{key[1]} ({exc}); "
                    "record kept in memory only — this cell re-runs on "
                    "resume"
                )

    def append_supervision(self, summary: dict) -> None:
        rec = dict(summary)
        rec["kind"] = "supervision"
        rec["ts"] = round(time.time(), 3)
        try:
            self.store.append_event(rec)
        except sqlite3.Error:
            pass

    def heartbeat(self) -> None:
        self.store.heartbeat()

    def close(self) -> None:
        if self.store is not None:
            self.store.close()
            self.store = None


def open_backend(
    config: StudyConfig,
    run_id: str,
    checkpoint_dir: Optional[str],
    fault_plan=None,
    log=None,
):
    """The checkpoint backend for one run, opened and ready to append.

    ``None`` when checkpointing is disabled.  The store is the default
    (``config.store``); when it cannot be opened — readonly directory,
    corrupt database file, disk full — the run falls back to the JSONL
    journal with a warning instead of dying.  Lease refusal
    (:class:`StoreLockedError`) and fingerprint mismatches (``ValueError``)
    are *not* fallbacks: they propagate, because proceeding would corrupt
    or mix a real run.
    """
    if checkpoint_dir is None:
        return None
    if getattr(config, "store", True):
        backend = StoreBackend(
            config, run_id, checkpoint_dir, fault_plan=fault_plan, log=log
        )
        try:
            backend.open()
            return backend
        except (StoreLockedError, ValueError):
            raise
        except (sqlite3.Error, OSError) as exc:
            if log:
                log(
                    f"warning: cannot open study store "
                    f"{store_path_for(checkpoint_dir)} ({exc}); falling "
                    "back to the JSONL journal"
                )
    backend = JournalBackend(
        config, run_id, checkpoint_dir, fault_plan=fault_plan
    )
    backend.open()
    return backend


# -- read-only helpers (reporting / CLI) ------------------------------------


def list_runs(checkpoint_dir: str) -> List[dict]:
    """Every run in the directory's store with indexed status counts."""
    path = store_path_for(checkpoint_dir)
    if not os.path.exists(path):
        return []
    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=10.0)
    try:
        conn.row_factory = sqlite3.Row
        out = []
        for row in conn.execute(
            "SELECT run_id, fingerprint, version, created_ts, closed_ts, "
            "imported_from FROM runs ORDER BY created_ts"
        ):
            # Status counts over the *latest* attempt per cell (the
            # record that wins on resume), straight off cells_by_cell.
            statuses: Dict[str, int] = {}
            for status, n in conn.execute(
                "SELECT status, COUNT(*) FROM cells c "
                "WHERE run_id = ? AND id = (SELECT MAX(id) FROM cells "
                "WHERE run_id = c.run_id AND bench = c.bench "
                "AND technique = c.technique) GROUP BY status",
                (row["run_id"],),
            ):
                statuses[status] = n
            lease = conn.execute(
                "SELECT owner, heartbeat_ts FROM leases WHERE run_id = ?",
                (row["run_id"],),
            ).fetchone()
            out.append(
                {
                    "run_id": row["run_id"],
                    "fingerprint": row["fingerprint"],
                    "version": row["version"],
                    "created_ts": row["created_ts"],
                    "closed_ts": row["closed_ts"],
                    "imported_from": row["imported_from"],
                    "cells": sum(statuses.values()),
                    "statuses": statuses,
                    "lease": dict(lease) if lease is not None else None,
                }
            )
        return out
    finally:
        conn.close()


def load_run(checkpoint_dir: str, run_id: str):
    """Rebuild a :class:`~repro.study.runner.StudyResult` from the store.

    The run's own persisted configuration is used (native runs store it;
    journal-imported runs store the importing resume's).  Raises
    ``KeyError`` for an unknown run.
    """
    path = store_path_for(checkpoint_dir)
    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=10.0)
    try:
        conn.row_factory = sqlite3.Row
        row = conn.execute(
            "SELECT config_json FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise KeyError(
                f"run {run_id!r} not found in {path} "
                f"(known: {[r['run_id'] for r in list_runs(checkpoint_dir)]})"
            )
        config = StudyConfig(**json.loads(row["config_json"]))
        completed: Dict[CellKey, dict] = {}
        for text, crc in conn.execute(
            "SELECT record, crc FROM cells WHERE run_id = ? ORDER BY id",
            (run_id,),
        ):
            try:
                rec = json.loads(text)
            except json.JSONDecodeError:
                continue
            if record_digest(rec) == crc:
                completed[(rec["bench"], rec["technique"])] = rec
        supervision = None
        for text, crc in conn.execute(
            "SELECT record, crc FROM events WHERE run_id = ? AND kind = ? "
            "ORDER BY id DESC LIMIT 1",
            (run_id, "supervision"),
        ):
            rec = json.loads(text)
            if record_digest(rec) == crc:
                supervision = {
                    k: v for k, v in rec.items() if k not in ("kind", "ts")
                }
        from .runner import assemble_study

        return assemble_study(config, completed, supervision)
    finally:
        conn.close()
