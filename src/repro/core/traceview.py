"""Counterexample rendering and trace simplification.

One of schedule bounding's selling points (paper section 1) is that "it
produces simple counterexample traces; a trace with a small number of
preemptions is likely to be easy to understand", citing the trace
simplification literature.  This module makes both halves concrete:

- :func:`render_trace` replays a schedule and pretty-prints the
  interleaving, one column per thread, flagging every preemptive context
  switch;
- :func:`simplify_trace` greedily merges context-switch blocks while the
  bug still reproduces, reducing the preemption count of a counterexample
  (a lightweight take on Jalbert & Sen's FSE'10 simplifier).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..engine.executor import DEFAULT_MAX_STEPS, execute
from ..engine.state import VisibleFilter
from ..engine.strategies import ReplayDivergence, ReplayStrategy, RoundRobinStrategy
from ..engine.trace import ExecutionObserver, Outcome
from ..runtime.ops import Op
from ..runtime.program import Program
from .schedule import Schedule, context_switch_flags


class _StepCollector(ExecutionObserver):
    """Collects one (tid, op) record per *visible* step."""

    def __init__(self) -> None:
        self.steps: List[Tuple[int, Op]] = []

    def on_step(self, tid: int, op: Op, result: Any, visible: bool) -> None:
        if visible:
            self.steps.append((tid, op))


def _describe(op: Op) -> str:
    target = getattr(op.target, "name", None)
    core = op.kind.name.lower()
    if target:
        core += f"({target})"
    return f"{core} @ {op.site}"


def render_trace(
    program: Program,
    schedule: Sequence[int],
    *,
    visible_filter: Optional[VisibleFilter] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> str:
    """Replay ``schedule`` and render the interleaving.

    Each line is one visible step: step index, thread column, operation,
    and a ``>>`` marker on preemptive context switches (the steps a bound
    of ``PC(α)`` pays for).  Ends with the outcome and the schedule's
    preemption/delay counts.
    """
    collector = _StepCollector()
    result = execute(
        program,
        ReplayStrategy(schedule, strict=True),
        visible_filter=visible_filter,
        observers=(collector,),
        max_steps=max_steps,
    )
    sched = Schedule.from_result(result)
    flags = context_switch_flags(result.schedule, result.enabled_sets)
    width = result.threads_created
    lines = [
        f"trace of {program.name!r} ({len(result.schedule)} steps, "
        f"{sched.preemptions} preemptions, {sched.delays} delays)"
    ]
    header = "  step  " + "".join(f"{('T' + str(t)):^6}" for t in range(width))
    lines.append(header + "  operation")
    for i, ((tid, op), flag) in enumerate(zip(collector.steps, flags)):
        cols = "".join(
            f"{'o':^6}" if t == tid else f"{'.':^6}" for t in range(width)
        )
        marker = ">>" if flag else "  "
        lines.append(f"{marker}{i:>4}  {cols}  {_describe(op)}")
    lines.append(f"outcome: {result.outcome.value}"
                 + (f" — {result.bug}" if result.bug else ""))
    return "\n".join(lines)


def _blocks(schedule: Sequence[int]) -> List[Tuple[int, int]]:
    """Runs of consecutive steps by the same thread: (tid, length)."""
    blocks: List[Tuple[int, int]] = []
    for tid in schedule:
        if blocks and blocks[-1][0] == tid:
            blocks[-1] = (tid, blocks[-1][1] + 1)
        else:
            blocks.append((tid, 1))
    return blocks


def _expand(blocks: Sequence[Tuple[int, int]]) -> List[int]:
    out: List[int] = []
    for tid, n in blocks:
        out.extend([tid] * n)
    return out


def _try(program, schedule, expected: Outcome, visible_filter, max_steps):
    """Replay non-strictly (the tail may shift) and check the outcome."""
    try:
        result = execute(
            program,
            ReplayStrategy(schedule, fallback=RoundRobinStrategy(), strict=True),
            visible_filter=visible_filter,
            max_steps=max_steps,
        )
    except ReplayDivergence:
        return None
    if result.outcome is expected:
        return result
    return None


def simplify_trace(
    program: Program,
    schedule: Sequence[int],
    *,
    visible_filter: Optional[VisibleFilter] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_passes: int = 4,
) -> List[int]:
    """Reduce a buggy schedule's context switches while keeping the bug.

    Greedy block merging: for each context switch, try moving the later
    block of the switching thread forward to join its previous block
    (eliminating one switch); keep the move if the same buggy outcome
    still reproduces.  Iterates to a fixed point (bounded by
    ``max_passes``).  Returns a schedule with preemption count ≤ the
    original's; the result always reproduces the original outcome.
    """
    base = execute(
        program,
        ReplayStrategy(schedule, strict=True),
        visible_filter=visible_filter,
        max_steps=max_steps,
    )
    if not base.outcome.is_bug:
        raise ValueError("schedule does not reproduce a bug; nothing to simplify")
    expected = base.outcome
    current = list(base.schedule)

    for _ in range(max_passes):
        blocks = _blocks(current)
        changed = False
        i = 0
        while i < len(blocks) - 1:
            # Find a later block of the same thread as blocks[i] and try to
            # merge it into blocks[i] (hoisting it over the blocks between).
            tid = blocks[i][0]
            for j in range(i + 1, len(blocks)):
                if blocks[j][0] != tid:
                    continue
                candidate = (
                    blocks[: i + 1]
                    + [blocks[j]]
                    + blocks[i + 1 : j]
                    + blocks[j + 1 :]
                )
                result = _try(
                    program, _expand(candidate), expected, visible_filter, max_steps
                )
                if result is not None:
                    current = list(result.schedule)
                    blocks = _blocks(current)
                    changed = True
                break  # only consider the nearest same-thread block
            i += 1
        if not changed:
            break
    return current


def preemptions_of(
    program: Program,
    schedule: Sequence[int],
    *,
    visible_filter: Optional[VisibleFilter] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> int:
    """PC of a schedule, computed by replaying it."""
    result = execute(
        program,
        ReplayStrategy(schedule, strict=True),
        visible_filter=visible_filter,
        max_steps=max_steps,
    )
    return Schedule.from_result(result).preemptions
