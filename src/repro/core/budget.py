"""Cooperative execution budgets: wall-clock deadlines and work ceilings.

A :class:`Budget` bounds how much work one exploration may perform.  It is
*cooperative*: nothing is interrupted asynchronously.  The executor polls
the budget between visible steps (:func:`repro.engine.executor.execute`
ends the execution with :attr:`~repro.engine.trace.Outcome.TIMEOUT` when
the budget has expired) and the explorers poll it between executions, so a
pathological subject ends with partial, well-formed statistics instead of
stalling its worker forever.  Hard failure modes — a worker that ignores
its deadline because it is stuck inside one step — are the job of the
:class:`repro.study.parallel.ParallelStudyRunner` watchdog, which kills
the worker process outright.

Deadlines use :func:`time.monotonic`, never :func:`time.time`: a wall
clock that steps (NTP adjustment, suspend/resume) must not extend or
collapse a deadline.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

#: Wall-clock reads are amortized: the deadline is polled once every this
#: many step ticks (work ceilings are exact, checked on every tick).
_CLOCK_STRIDE = 64


class BudgetExceeded(Exception):
    """Raised by callers that prefer an exception over polling."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class Budget:
    """A wall-clock deadline plus optional execution/step ceilings.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock allowance from :meth:`start` (lazily started on first
        use).  ``None`` = no deadline.
    max_executions:
        Ceiling on started executions (``None`` = unlimited).
    max_total_steps:
        Ceiling on visible steps summed over all executions.
    clock:
        Injectable monotonic clock (tests); defaults to ``time.monotonic``.

    The two poll entry points are :meth:`start_execution` (between
    executions; counts one execution, always reads the clock) and
    :meth:`tick` (between visible steps; counts one step, reads the clock
    every ``_CLOCK_STRIDE`` ticks).  Both return ``True`` once the budget
    is exhausted, and :attr:`reason` says why.
    """

    __slots__ = (
        "deadline_seconds",
        "max_executions",
        "max_total_steps",
        "_clock",
        "_t0",
        "_executions",
        "_total_steps",
        "_tick_gas",
        "_reason",
    )

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_executions: Optional[int] = None,
        max_total_steps: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadline_seconds = deadline_seconds
        self.max_executions = max_executions
        self.max_total_steps = max_total_steps
        self._clock = clock
        self._t0: Optional[float] = None
        self._executions = 0
        self._total_steps = 0
        self._tick_gas = 0
        self._reason: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Budget":
        """Start the deadline clock (idempotent; implied by first poll)."""
        if self._t0 is None:
            self._t0 = self._clock()
        return self

    @property
    def executions(self) -> int:
        return self._executions

    @property
    def total_steps(self) -> int:
        return self._total_steps

    @property
    def reason(self) -> Optional[str]:
        """Why the budget expired (``None`` while within budget)."""
        return self._reason

    @property
    def expired(self) -> bool:
        """Authoritative check: work ceilings and an exact clock read."""
        if self._reason is not None:
            return True
        if (
            self.max_executions is not None
            and self._executions >= self.max_executions
        ):
            self._reason = f"execution ceiling ({self.max_executions}) reached"
            return True
        if (
            self.max_total_steps is not None
            and self._total_steps >= self.max_total_steps
        ):
            self._reason = f"step ceiling ({self.max_total_steps}) reached"
            return True
        return self._check_clock()

    def _check_clock(self) -> bool:
        if self.deadline_seconds is None:
            return False
        if self._t0 is None:
            self._t0 = self._clock()
            return False
        if self._clock() - self._t0 >= self.deadline_seconds:
            self._reason = (
                f"wall-clock deadline ({self.deadline_seconds:g}s) exceeded"
            )
            return True
        return False

    # -- poll points -------------------------------------------------------

    def start_execution(self) -> bool:
        """Between-executions poll: count one started execution and return
        ``True`` if the budget is already exhausted (the execution should
        then not run at all)."""
        if self.expired:
            return True
        self._executions += 1
        return False

    def tick(self) -> bool:
        """Between-visible-steps poll: count one step and return ``True``
        once the budget is exhausted.  Ceilings are exact; the wall clock
        is read every ``_CLOCK_STRIDE`` ticks to keep the hot loop cheap.
        """
        if self._reason is not None:
            return True
        self._total_steps += 1
        if (
            self.max_total_steps is not None
            and self._total_steps > self.max_total_steps
        ):
            self._reason = f"step ceiling ({self.max_total_steps}) reached"
            return True
        self._tick_gas -= 1
        if self._tick_gas <= 0:
            self._tick_gas = _CLOCK_STRIDE
            return self._check_clock()
        return False

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if the budget has expired."""
        if self.expired:
            raise BudgetExceeded(self._reason or "budget exceeded")

    def trip(self, reason: str) -> None:
        """Expire the budget from outside (first trip wins).

        The supervisor's breach channel: a resource watchdog thread
        (:class:`repro.study.supervisor.CellSupervisor`) cannot raise
        into the exploring thread, but it can trip the budget — the
        exploration then stops cooperatively at its very next poll with
        partial, well-formed stats, exactly like a deadline expiry.
        Writing ``_reason`` is atomic under the GIL and every poll entry
        point checks it first, so no lock is needed.
        """
        if self._reason is None:
            self._reason = reason

    # -- fork transfer -----------------------------------------------------

    def remaining_seconds(self) -> Optional[float]:
        """Wall-clock allowance left (``None`` = no deadline; 0 floor)."""
        if self.deadline_seconds is None:
            return None
        if self._t0 is None:
            return self.deadline_seconds
        return max(0.0, self.deadline_seconds - (self._clock() - self._t0))

    def fork_reanchor(self) -> None:
        """Re-anchor the deadline in a freshly-forked child.

        A forked snapshot worker inherits this object's state by memory
        image, including ``_t0`` — an anchor read on the *parent's* clock.
        ``time.monotonic`` happens to be process-agnostic on the platforms
        that have ``os.fork``, but an injected clock need not be, and a
        child must never widen its allowance either way.  Call this in the
        child immediately after the fork: the remaining allowance is
        computed once against the inherited anchor, the deadline rebased to
        it, and the anchor reset so the first poll re-reads the child's own
        clock.  ``_tick_gas`` is zeroed so a nearly-expired deadline is
        noticed on the very next step tick rather than up to
        ``_CLOCK_STRIDE`` steps late.  Work ceilings transfer as inherited
        counts (the child's allowance is what the parent had left).
        """
        if self.deadline_seconds is not None:
            self.deadline_seconds = self.remaining_seconds()
            self._t0 = None
        self._tick_gas = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds:g}s")
        if self.max_executions is not None:
            parts.append(f"max_executions={self.max_executions}")
        if self.max_total_steps is not None:
            parts.append(f"max_total_steps={self.max_total_steps}")
        state = self._reason or "within budget"
        return f"Budget({', '.join(parts) or 'unbounded'}; {state})"
