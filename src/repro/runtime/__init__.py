"""SCT runtime substrate: programs, thread contexts, shared objects, ops.

This package is the Python stand-in for the pthread + PIN layer the paper's
modified Maple operates on.  Programs are written against a pthread-like
generator API and executed under full scheduler control by
:mod:`repro.engine`.
"""

from .context import ThreadContext, ThreadHandle
from .errors import (
    AssertionFailureBug,
    BugType,
    ConcurrencyBug,
    CrashBug,
    DeadlockBug,
    EngineInvariantError,
    MemorySafetyBug,
    MisuseError,
    MisuseKind,
    MisuseReport,
    RuntimeUsageError,
    normalize_traceback,
)
from .objects import (
    Atomic,
    Barrier,
    CondVar,
    GuardMode,
    Mutex,
    RWLock,
    Semaphore,
    SharedArray,
    SharedObject,
    SharedVar,
)
from .ops import BLOCKING_KINDS, DATA_KINDS, SYNC_KINDS, Op, OpKind
from .program import Program

__all__ = [
    "ThreadContext",
    "ThreadHandle",
    "AssertionFailureBug",
    "BugType",
    "ConcurrencyBug",
    "CrashBug",
    "DeadlockBug",
    "EngineInvariantError",
    "MemorySafetyBug",
    "MisuseError",
    "MisuseKind",
    "MisuseReport",
    "RuntimeUsageError",
    "normalize_traceback",
    "Atomic",
    "Barrier",
    "CondVar",
    "GuardMode",
    "Mutex",
    "RWLock",
    "Semaphore",
    "SharedArray",
    "SharedObject",
    "SharedVar",
    "Op",
    "OpKind",
    "SYNC_KINDS",
    "DATA_KINDS",
    "BLOCKING_KINDS",
    "Program",
]
