"""Execution outcomes, results, and observation hooks.

An :class:`ExecutionResult` captures everything the explorers and the study
harness need from one controlled execution: the outcome, the schedule (list
of thread ids, one per visible step — the paper's ``α``), and the per-step
enabled sets needed to compute preemption and delay counts after the fact.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, Tuple

from ..runtime.errors import BugType, ConcurrencyBug, MisuseReport
from ..runtime.ops import Op


class Outcome(enum.Enum):
    """Terminal classification of one controlled execution."""

    OK = "ok"                    # all threads finished, no bug
    ASSERTION = "assertion"
    DEADLOCK = "deadlock"
    CRASH = "crash"
    MEMORY = "memory"
    STEP_LIMIT = "step-limit"    # abandoned: step budget exhausted
    TIMEOUT = "timeout"          # abandoned: cooperative Budget expired mid-run
    ABORT = "abort"              # abandoned: contained program-API misuse
    LIVELOCK = "livelock"        # abandoned: step budget exhausted *and* a
                                 # non-progress cycle (lasso) was confirmed

    @property
    def is_bug(self) -> bool:
        return self in _BUG_OUTCOMES

    @property
    def is_terminal_schedule(self) -> bool:
        """Whether this execution counts as a *terminal schedule*.

        The paper counts buggy executions as terminal (an assertion failure
        is a terminal state, section 2); only abandonment is excluded — by
        the per-run step budget (``STEP_LIMIT``, or its lasso-confirmed
        refinement ``LIVELOCK``), a cooperative deadline (``TIMEOUT``, see
        :class:`repro.core.budget.Budget`), or a contained program-API
        misuse (``ABORT``, see :class:`repro.runtime.errors.MisuseReport`).
        """
        return self not in _ABANDONED_OUTCOMES


_BUG_OUTCOMES = frozenset(
    {Outcome.ASSERTION, Outcome.DEADLOCK, Outcome.CRASH, Outcome.MEMORY}
)

_ABANDONED_OUTCOMES = frozenset(
    {Outcome.STEP_LIMIT, Outcome.TIMEOUT, Outcome.ABORT, Outcome.LIVELOCK}
)

_BUGTYPE_TO_OUTCOME = {
    BugType.ASSERTION: Outcome.ASSERTION,
    BugType.DEADLOCK: Outcome.DEADLOCK,
    BugType.CRASH: Outcome.CRASH,
    BugType.MEMORY: Outcome.MEMORY,
}


def outcome_for_bug(bug: ConcurrencyBug) -> Outcome:
    return _BUGTYPE_TO_OUTCOME.get(bug.bug_type, Outcome.CRASH)


class ExecutionResult:
    """The observable result of one controlled execution."""

    __slots__ = (
        "outcome",
        "bug",
        "schedule",
        "enabled_sets",
        "created_counts",
        "steps",
        "choice_points",
        "max_enabled",
        "threads_created",
        "shared",
        "recorded_from",
        "misuse",
        "leaks",
        "lasso_len",
    )

    def __init__(
        self,
        outcome: Outcome,
        bug: Optional[ConcurrencyBug],
        schedule: List[int],
        enabled_sets: Optional[List[Tuple[int, ...]]],
        created_counts: Optional[List[int]],
        steps: int,
        choice_points: int,
        max_enabled: int,
        threads_created: int,
        shared: Any,
        recorded_from: int = 0,
        misuse: Optional[MisuseReport] = None,
        leaks: Optional[Tuple[str, ...]] = None,
        lasso_len: Optional[int] = None,
    ) -> None:
        self.outcome = outcome
        self.bug = bug
        #: α — thread id per visible step, in execution order.
        self.schedule = schedule
        #: enabled(α(1..i-1)) for each step i, as a sorted tuple of tids
        #: (``None`` when recording was disabled for speed).
        self.enabled_sets = enabled_sets
        #: number of threads created *before* each step (the ``N`` of the
        #: delay-count formula).
        self.created_counts = created_counts
        self.steps = steps
        #: number of scheduling points where more than one thread was
        #: enabled (Table 3's "# max scheduling points" tracks the maximum
        #: of this over all runs).
        self.choice_points = choice_points
        self.max_enabled = max_enabled
        self.threads_created = threads_created
        #: the shared-state object of this execution (for output checking).
        self.shared = shared
        #: First step index covered by the per-step recordings and width
        #: stats (the ``record_from_step`` cut-over of the replay fast
        #: path).  ``0`` = everything was recorded; when positive,
        #: ``enabled_sets``/``created_counts`` cover only
        #: ``schedule[recorded_from:]`` and ``choice_points``/
        #: ``max_enabled`` were seeded by the caller from stored prefix
        #: statistics (see :class:`repro.core.dfs.BoundedDFS`).
        self.recorded_from = recorded_from
        #: The contained misuse behind an ``ABORT`` outcome (kind, message,
        #: normalized traceback); ``None`` for every other outcome.
        self.misuse = misuse
        #: Resources the terminal-state audit found leaked at ``OK``
        #: (labels like ``"mutex-held:m"``); ``None`` = clean or not ``OK``.
        self.leaks = leaks
        #: Length of the confirmed non-progress cycle behind a ``LIVELOCK``
        #: outcome (the lasso's period in visible steps); ``None`` otherwise.
        self.lasso_len = lasso_len

    @property
    def is_buggy(self) -> bool:
        return self.outcome.is_bug

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({self.outcome.value}, steps={self.steps}, "
            f"threads={self.threads_created})"
        )


class ExecutionObserver:
    """Hook interface for observing one execution (race detection, stats).

    Subclass and override; default implementations are no-ops so observers
    only pay for what they use.
    """

    def on_start(self, shared: Any) -> None:
        """Called once before the first step."""

    def on_step(self, tid: int, op: Op, result: Any, visible: bool) -> None:
        """Called after each operation is executed.

        ``visible=False`` for data accesses serviced inside another step
        (not scheduling points under the current filter).
        """

    def on_wake(self, waker: int, woken: int, obj: Any) -> None:
        """Called when ``waker`` unparks ``woken`` (cond signal, barrier)."""

    def on_finish(self, result: "ExecutionResult") -> None:
        """Called once with the final result."""
