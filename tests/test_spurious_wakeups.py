"""Spurious condvar wakeups (the CHESS ``/spuriouswakeups`` feature).

POSIX allows ``pthread_cond_wait`` to return without a signal; code that
checks its predicate with ``if`` instead of ``while`` is broken.  With
``spurious_wakeups=True`` the engine makes every parked condvar waiter
schedulable, so systematic search exposes the missing-recheck bug; the
correctly written variant must stay clean even under spurious wakeups.
"""

from types import SimpleNamespace

import pytest

from repro.core import DFSExplorer, RandomExplorer
from repro.engine import Outcome, RoundRobinStrategy, execute, replay
from repro.runtime import CondVar, Mutex, Program, SharedVar


def make_handshake(recheck: bool) -> Program:
    """Consumer waits for ``ready``; producer sets it and signals.

    ``recheck=False`` is the bug: the consumer tests the predicate with
    ``if``, so a spurious wakeup lets it proceed before the data exists.
    """

    def setup():
        return SimpleNamespace(
            m=Mutex("m"),
            cv=CondVar("cv"),
            ready=SharedVar(0, "ready"),
            data=SharedVar(None, "data"),
        )

    def consumer(ctx, sh):
        yield ctx.lock(sh.m)
        if recheck:
            while True:
                r = yield ctx.load(sh.ready)
                if r:
                    break
                yield ctx.cond_wait(sh.cv, sh.m)
        else:
            r = yield ctx.load(sh.ready)
            if not r:
                yield ctx.cond_wait(sh.cv, sh.m)  # BUG: no re-check
        v = yield ctx.load(sh.data)
        yield ctx.unlock(sh.m)
        ctx.check(v == 42, f"consumed data={v} before production")

    def producer(ctx, sh):
        yield ctx.lock(sh.m)
        yield ctx.store(sh.data, 42)
        yield ctx.store(sh.ready, 1)
        yield ctx.cond_signal(sh.cv)
        yield ctx.unlock(sh.m)

    def main(ctx, sh):
        c = yield ctx.spawn(consumer)
        p = yield ctx.spawn(producer)
        yield ctx.join(c)
        yield ctx.join(p)

    name = "handshake_while" if recheck else "handshake_if"
    return Program(name, setup, main)


class TestWithoutSpuriousWakeups:
    def test_if_variant_passes_ordinary_search(self):
        # Without spurious wakeups the signal implies the predicate, so
        # the buggy variant is unfalsifiable — exactly why such bugs ship.
        stats = DFSExplorer().explore(make_handshake(recheck=False), 10_000)
        assert stats.completed
        assert not stats.found_bug


class TestWithSpuriousWakeups:
    def test_if_variant_fails(self):
        stats = DFSExplorer(spurious_wakeups=True).explore(
            make_handshake(recheck=False), 10_000
        )
        assert stats.found_bug
        assert stats.first_bug.outcome is Outcome.ASSERTION

    def test_while_variant_still_clean(self):
        stats = DFSExplorer(spurious_wakeups=True).explore(
            make_handshake(recheck=True), 10_000
        )
        assert stats.completed
        assert not stats.found_bug

    def test_random_explorer_supports_it_too(self):
        stats = RandomExplorer(seed=4, spurious_wakeups=True).explore(
            make_handshake(recheck=False), 2_000
        )
        assert stats.found_bug

    def test_bug_replayable_with_flag(self):
        program = make_handshake(recheck=False)
        stats = DFSExplorer(spurious_wakeups=True).explore(program, 10_000)
        result = replay(
            program, stats.first_bug.schedule, spurious_wakeups=True
        )
        assert result.outcome is Outcome.ASSERTION

    def test_wake_never_jumps_a_held_mutex(self):
        # Spuriously waking a waiter whose mutex is held must not break
        # mutual exclusion: the woken thread blocks at the reacquire, so
        # the holder's critical section is never observed half-done.
        def setup():
            return SimpleNamespace(
                m=Mutex("m"), cv=CondVar("cv"), in_cs=SharedVar(0, "in_cs")
            )

        def waiter(ctx, sh):
            yield ctx.lock(sh.m)
            yield ctx.cond_wait(sh.cv, sh.m)
            busy = yield ctx.load(sh.in_cs)
            ctx.check(busy == 0, "woke into an occupied critical section")
            yield ctx.unlock(sh.m)

        def holder(ctx, sh):
            yield ctx.lock(sh.m)
            yield ctx.store(sh.in_cs, 1)
            yield ctx.sched_yield()
            yield ctx.store(sh.in_cs, 0)
            yield ctx.cond_signal(sh.cv)
            yield ctx.unlock(sh.m)

        def main(ctx, sh):
            w = yield ctx.spawn(waiter)
            h = yield ctx.spawn(holder)
            yield ctx.join(w)
            yield ctx.join(h)

        program = Program("wake_vs_mutex", setup, main)
        # Exhaustive: mutual exclusion holds on every schedule, spurious
        # wake-ups included.
        stats = DFSExplorer(spurious_wakeups=True).explore(program, 10_000)
        assert stats.completed
        assert not stats.found_bug
        for seed in range(40):
            st = RandomExplorer(seed=seed, spurious_wakeups=True).explore(
                program, 20
            )
            assert not st.found_bug

    def test_default_engine_unaffected(self):
        program = make_handshake(recheck=False)
        result = execute(program, RoundRobinStrategy())
        assert result.outcome is Outcome.OK
